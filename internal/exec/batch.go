package exec

import (
	"fmt"

	"dyntables/internal/plan"
	"dyntables/internal/types"
)

// This file implements the columnar fast path: Scan→Filter→Project→Limit
// chains execute over shared, version-cached column batches with
// vectorized predicates and projections, and materialize to []TRow only
// at the boundary to a row-at-a-time operator (join, aggregate, window,
// sort, ...). Operators outside those chains run the legacy row path
// unchanged, which the differential harness holds byte-equivalent.

// batchRes is a columnar intermediate result: a (possibly shared) batch
// plus a selection of surviving row indices; a nil selection means every
// row survives.
type batchRes struct {
	b   *types.Batch
	sel []int
}

// len returns the number of selected rows.
func (r *batchRes) len() int {
	if r.sel == nil {
		return r.b.Len()
	}
	return len(r.sel)
}

// at maps a dense position to a batch row index.
func (r *batchRes) at(i int) int {
	if r.sel == nil {
		return i
	}
	return r.sel[i]
}

// materialize converts the result to tagged rows. The returned slice is
// fresh (safe for in-place downstream sorting) but the rows themselves
// are shared views into the batch and must not be mutated.
func (r *batchRes) materialize() []TRow {
	rows := r.b.Rows()
	ids := r.b.IDs()
	if r.sel == nil {
		out := make([]TRow, len(rows))
		for i := range rows {
			out[i] = TRow{ID: ids[i], Row: rows[i]}
		}
		return out
	}
	out := make([]TRow, len(r.sel))
	for j, i := range r.sel {
		out[j] = TRow{ID: ids[i], Row: rows[i]}
	}
	return out
}

// batchable reports whether the whole subtree under n can execute on
// the columnar path (it bottoms out in a Scan through vectorizable
// operators only).
func batchable(n plan.Node) bool {
	switch x := n.(type) {
	case *plan.Scan:
		return true
	case *plan.Filter:
		return batchable(x.Input)
	case *plan.Project:
		return batchable(x.Input)
	case *plan.Limit:
		return batchable(x.Input)
	default:
		return false
	}
}

// useBatches reports whether the columnar path is available and
// applicable for this execution (EXPLAIN ANALYZE keeps the row path so
// per-operator stats stay complete).
func (c *Context) useBatches() bool {
	return c.BatchOf != nil && c.Stats == nil
}

// runBatch executes a batchable subtree on the columnar path.
func runBatch(n plan.Node, ctx *Context) (*batchRes, error) {
	if err := ctx.canceled(); err != nil {
		return nil, err
	}
	ctx.count(func(c *Counters) { c.NodesVisited++ })
	switch x := n.(type) {
	case *plan.Scan:
		b, err := ctx.BatchOf(x)
		if err != nil {
			return nil, err
		}
		if ctx.Counters != nil {
			ctx.Counters.ScanCalls++
			ctx.Counters.ScanRows += int64(b.Len())
			ctx.Counters.ScanBytes += b.ApproxBytes()
		}
		return &batchRes{b: b}, nil
	case *plan.Filter:
		in, err := runBatch(x.Input, ctx)
		if err != nil {
			return nil, err
		}
		sel, err := plan.FilterVec(x.Pred, in.b, in.sel, ctx.eval())
		if err != nil {
			return nil, err
		}
		return &batchRes{b: in.b, sel: sel}, nil
	case *plan.Project:
		in, err := runBatch(x.Input, ctx)
		if err != nil {
			return nil, err
		}
		cols := make([]*types.Vector, len(x.Exprs))
		ev := ctx.eval()
		for i, e := range x.Exprs {
			v, err := plan.EvalVec(e, in.b, in.sel, ev)
			if err != nil {
				return nil, err
			}
			cols[i] = v
		}
		ids := in.b.IDs()
		if in.sel != nil {
			ids = make([]string, len(in.sel))
			for j, i := range in.sel {
				ids[j] = in.b.ID(i)
			}
		}
		return &batchRes{b: types.NewBatchFromCols(x.Schema(), ids, cols)}, nil
	case *plan.Limit:
		in, err := runBatch(x.Input, ctx)
		if err != nil {
			return nil, err
		}
		n := int(x.N)
		if in.len() <= n {
			return in, nil
		}
		sel := in.sel
		if sel == nil {
			sel = make([]int, n)
			for i := range sel {
				sel[i] = i
			}
		} else {
			sel = sel[:n]
		}
		return &batchRes{b: in.b, sel: sel}, nil
	default:
		return nil, fmt.Errorf("exec: node %T is not batchable", n)
	}
}

// ColumnarRows is an exported handle to a columnar intermediate result.
// It lets the IVM layer carry boundary snapshots across the exec package
// boundary in batch form, deferring (or avoiding) row materialization.
type ColumnarRows struct {
	res *batchRes
}

// Rows materializes the result to tagged rows. The rows are shared views
// into the underlying batch and must not be mutated.
func (c *ColumnarRows) Rows() []TRow { return c.res.materialize() }

// Len returns the number of selected rows.
func (c *ColumnarRows) Len() int { return c.res.len() }

// RunColumnar evaluates a plan subtree on the columnar path when the
// context enables it and the subtree supports it. handled reports
// whether the columnar path ran at all: when false, no work was done and
// the caller must fall back to Run.
func RunColumnar(n plan.Node, ctx *Context) (_ *ColumnarRows, handled bool, _ error) {
	if !ctx.useBatches() || !batchable(n) {
		return nil, false, nil
	}
	res, err := runBatch(n, ctx)
	if err != nil {
		return nil, true, err
	}
	return &ColumnarRows{res: res}, true, nil
}

// AggregateColumnar aggregates a columnar input without materializing
// input rows. When affected is non-nil, rows whose group key is absent
// from it are skipped — the IVM affected-group restriction fused into
// the aggregation loop instead of a separate row-at-a-time filter pass.
func AggregateColumnar(a *plan.Aggregate, in *ColumnarRows, affected map[string]bool, ctx *Context) ([]TRow, error) {
	return aggregateBatch(a, in.res, affected, ctx)
}

// aggregateBatch is the vectorized aggregation loop: group-by and
// aggregate-argument expressions are evaluated once per column over the
// whole batch, group keys are encoded into one reused buffer, and map
// lookups use the allocation-free string-conversion idiom — so the
// steady-state per-row work (existing group, key already seen) allocates
// nothing, where the row loop pays a group-values row, a key buffer and
// a key string per input row.
func aggregateBatch(a *plan.Aggregate, in *batchRes, affected map[string]bool, ctx *Context) ([]TRow, error) {
	ev := ctx.eval()
	keys := make([]*types.Vector, len(a.GroupBy))
	for i, g := range a.GroupBy {
		v, err := plan.EvalVec(g, in.b, in.sel, ev)
		if err != nil {
			return nil, err
		}
		keys[i] = v
	}
	args := make([]*types.Vector, len(a.Aggs))
	for i, agg := range a.Aggs {
		if agg.Arg == nil {
			continue
		}
		v, err := plan.EvalVec(agg.Arg, in.b, in.sel, ev)
		if err != nil {
			return nil, err
		}
		args[i] = v
	}

	groups := make(map[string]*aggGroup)
	order := []string{}
	var buf []byte
	n := in.len()
	ticks := 0
	for i := 0; i < n; i++ {
		if err := ctx.tick(&ticks); err != nil {
			return nil, err
		}
		buf = buf[:0]
		for _, kv := range keys {
			buf = normalizeKeyValue(kv.Value(i)).EncodeKey(buf)
		}
		if affected != nil && !affected[string(buf)] {
			continue
		}
		grp := groups[string(buf)]
		if grp == nil {
			vals := make(types.Row, len(keys))
			for k, kv := range keys {
				vals[k] = kv.Value(i)
			}
			grp = newAggGroup(a, vals)
			key := string(buf)
			groups[key] = grp
			order = append(order, key)
		}
		for k, acc := range grp.accs {
			var v types.Value
			if args[k] != nil {
				v = args[k].Value(i)
			}
			if err := acc.addValue(v); err != nil {
				return nil, err
			}
		}
	}
	return finalizeGroups(a, groups, order), nil
}

// batchIter adapts a columnar result to the pull-based cursor protocol,
// deferring execution to the first Next like deferredIter so statement
// errors surface on the first row, not at open.
type batchIter struct {
	n   plan.Node
	ctx *Context

	started bool
	err     error
	res     *batchRes
	rows    []types.Row
	i       int
}

// Next implements RowIter.
func (it *batchIter) Next() (TRow, bool, error) {
	if !it.started {
		it.started = true
		res, err := runBatch(it.n, it.ctx)
		if err != nil {
			it.err = err
		} else {
			it.res = res
			it.rows = res.b.Rows()
		}
	}
	if it.err != nil {
		return TRow{}, false, it.err
	}
	if it.i >= it.res.len() {
		return TRow{}, false, nil
	}
	if err := it.ctx.canceled(); err != nil {
		return TRow{}, false, err
	}
	idx := it.res.at(it.i)
	it.i++
	return TRow{ID: it.res.b.ID(idx), Row: it.rows[idx]}, true, nil
}

// Close implements RowIter.
func (it *batchIter) Close() {}

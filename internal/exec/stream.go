package exec

import (
	"strconv"

	"dyntables/internal/plan"
	"dyntables/internal/types"
)

// RowIter is a pull-based cursor over plan execution output. Next returns
// the next row, or ok=false once the input is exhausted or Close has been
// called. Iterators are not safe for concurrent use.
type RowIter interface {
	Next() (TRow, bool, error)
	Close()
}

// Stream returns a cursor over the plan's result rows. Pipelined operators
// (Scan, Filter, Project, Limit, UnionAll, Flatten, Values) produce rows
// incrementally; blocking operators (Join, Aggregate, Window, Sort,
// Distinct) materialize their input on first Next. Every operator checks
// ctx.Ctx between rows, so abandoning the cursor via context cancellation
// stops execution promptly. With ctx.Stats set, every pipelined operator
// reports rows out and cumulative wall time per plan node (blocking
// operators report through Run).
func Stream(n plan.Node, ctx *Context) RowIter {
	it := stream(n, ctx)
	if ctx.Stats != nil {
		if _, blocking := it.(*deferredIter); !blocking {
			// Blocking subtrees are observed node-by-node inside Run;
			// wrapping the deferred iterator too would double-count.
			return &statIter{in: it, stats: ctx.Stats, n: n}
		}
	}
	return it
}

func stream(n plan.Node, ctx *Context) RowIter {
	if ctx.useBatches() && batchable(n) {
		// Columnar fast path: the whole subtree executes over shared
		// version batches on first Next and streams the selection.
		return &batchIter{n: n, ctx: ctx}
	}
	switch x := n.(type) {
	case *plan.Filter:
		return &filterIter{in: Stream(x.Input, ctx), pred: x.Pred, ctx: ctx, ev: ctx.eval()}
	case *plan.Project:
		return &projectIter{in: Stream(x.Input, ctx), exprs: x.Exprs, ctx: ctx, ev: ctx.eval()}
	case *plan.Limit:
		return &limitIter{in: Stream(x.Input, ctx), n: x.N, ctx: ctx}
	case *plan.UnionAll:
		return &unionIter{u: x, ctx: ctx}
	case *plan.Flatten:
		return &flattenIter{in: Stream(x.Input, ctx), f: x, ctx: ctx}
	case *plan.Scan:
		return &scanIter{s: x, ctx: ctx}
	case *plan.Values:
		out := make([]TRow, len(x.Rows))
		for i, r := range x.Rows {
			out[i] = TRow{ID: "v:" + strconv.Itoa(i), Row: r}
		}
		return &sliceIter{rows: out, ctx: ctx}
	default:
		// Blocking operator: materialize via the recursive executor. The
		// per-node cancellation check in Run bounds the work done after a
		// cancellation arrives.
		return &deferredIter{n: n, ctx: ctx}
	}
}

// Collect drains a cursor into a slice, closing it.
func Collect(it RowIter) ([]TRow, error) {
	defer it.Close()
	var out []TRow
	for {
		tr, ok, err := it.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			return out, nil
		}
		out = append(out, tr)
	}
}

// sliceIter yields pre-computed rows.
type sliceIter struct {
	rows   []TRow
	pos    int
	ctx    *Context
	closed bool
}

func (it *sliceIter) Next() (TRow, bool, error) {
	if it.closed || it.pos >= len(it.rows) {
		return TRow{}, false, nil
	}
	if err := it.ctx.canceled(); err != nil {
		it.Close()
		return TRow{}, false, err
	}
	tr := it.rows[it.pos]
	it.pos++
	return tr, true, nil
}

func (it *sliceIter) Close() { it.closed = true; it.rows = nil }

// deferredIter materializes a blocking operator's output on first Next.
type deferredIter struct {
	n      plan.Node
	ctx    *Context
	inner  *sliceIter
	closed bool
}

func (it *deferredIter) Next() (TRow, bool, error) {
	if it.closed {
		return TRow{}, false, nil
	}
	if it.inner == nil {
		rows, err := Run(it.n, it.ctx)
		if err != nil {
			it.Close()
			return TRow{}, false, err
		}
		it.inner = &sliceIter{rows: rows, ctx: it.ctx}
	}
	return it.inner.Next()
}

func (it *deferredIter) Close() {
	it.closed = true
	if it.inner != nil {
		it.inner.Close()
	}
}

// scanIter streams a table scan, resolving the pinned contents lazily on
// first Next.
type scanIter struct {
	s      *plan.Scan
	ctx    *Context
	rows   []TRow
	opened bool
	pos    int
	closed bool
}

func (it *scanIter) Next() (TRow, bool, error) {
	if it.closed {
		return TRow{}, false, nil
	}
	if err := it.ctx.canceled(); err != nil {
		it.Close()
		return TRow{}, false, err
	}
	if !it.opened {
		it.opened = true
		contents, err := it.ctx.RowsOf(it.s)
		if err != nil {
			it.Close()
			return TRow{}, false, err
		}
		it.rows = make([]TRow, 0, len(contents))
		for id, r := range contents {
			it.rows = append(it.rows, TRow{ID: id, Row: r})
		}
		if it.ctx.Counters != nil {
			it.ctx.Counters.ScanCalls++
			it.ctx.Counters.ScanRows += int64(len(it.rows))
			it.ctx.Counters.ScanBytes += approxRowsBytes(it.rows)
		}
	}
	if it.pos >= len(it.rows) {
		return TRow{}, false, nil
	}
	tr := it.rows[it.pos]
	it.pos++
	return tr, true, nil
}

func (it *scanIter) Close() { it.closed = true; it.rows = nil }

type filterIter struct {
	in     RowIter
	pred   plan.Expr
	ctx    *Context
	ev     *plan.EvalContext
	closed bool
}

func (it *filterIter) Next() (TRow, bool, error) {
	if it.closed {
		return TRow{}, false, nil
	}
	ev := it.ev
	for {
		if err := it.ctx.canceled(); err != nil {
			it.Close()
			return TRow{}, false, err
		}
		tr, ok, err := it.in.Next()
		if err != nil || !ok {
			return TRow{}, false, err
		}
		pass, err := plan.EvalBool(it.pred, tr.Row, ev)
		if err != nil {
			it.Close()
			return TRow{}, false, err
		}
		if pass {
			return tr, true, nil
		}
	}
}

func (it *filterIter) Close() { it.closed = true; it.in.Close() }

type projectIter struct {
	in     RowIter
	exprs  []plan.Expr
	ctx    *Context
	ev     *plan.EvalContext
	closed bool
}

func (it *projectIter) Next() (TRow, bool, error) {
	if it.closed {
		return TRow{}, false, nil
	}
	if err := it.ctx.canceled(); err != nil {
		it.Close()
		return TRow{}, false, err
	}
	tr, ok, err := it.in.Next()
	if err != nil || !ok {
		return TRow{}, false, err
	}
	row := make(types.Row, len(it.exprs))
	for j, e := range it.exprs {
		v, err := plan.Eval(e, tr.Row, it.ev)
		if err != nil {
			it.Close()
			return TRow{}, false, err
		}
		row[j] = v
	}
	return TRow{ID: tr.ID, Row: row}, true, nil
}

func (it *projectIter) Close() { it.closed = true; it.in.Close() }

type limitIter struct {
	in     RowIter
	n      int64
	seen   int64
	ctx    *Context
	closed bool
}

func (it *limitIter) Next() (TRow, bool, error) {
	if it.closed || it.seen >= it.n {
		it.Close()
		return TRow{}, false, nil
	}
	tr, ok, err := it.in.Next()
	if err != nil || !ok {
		return TRow{}, false, err
	}
	it.seen++
	return tr, true, nil
}

func (it *limitIter) Close() { it.closed = true; it.in.Close() }

// unionIter streams each branch in order, opening branches lazily.
type unionIter struct {
	u      *plan.UnionAll
	ctx    *Context
	branch int
	cur    RowIter
	closed bool
}

func (it *unionIter) Next() (TRow, bool, error) {
	if it.closed {
		return TRow{}, false, nil
	}
	for {
		if it.cur == nil {
			if it.branch >= len(it.u.Inputs) {
				return TRow{}, false, nil
			}
			it.cur = Stream(it.u.Inputs[it.branch], it.ctx)
		}
		tr, ok, err := it.cur.Next()
		if err != nil {
			it.Close()
			return TRow{}, false, err
		}
		if ok {
			return TRow{ID: UnionBranchID(it.branch, tr.ID), Row: tr.Row}, true, nil
		}
		it.cur.Close()
		it.cur = nil
		it.branch++
	}
}

func (it *unionIter) Close() {
	it.closed = true
	if it.cur != nil {
		it.cur.Close()
		it.cur = nil
	}
}

// flattenIter unnests variant arrays one input row at a time.
type flattenIter struct {
	in      RowIter
	f       *plan.Flatten
	ctx     *Context
	pending []TRow
	closed  bool
}

func (it *flattenIter) Next() (TRow, bool, error) {
	if it.closed {
		return TRow{}, false, nil
	}
	for {
		if len(it.pending) > 0 {
			tr := it.pending[0]
			it.pending = it.pending[1:]
			return tr, true, nil
		}
		if err := it.ctx.canceled(); err != nil {
			it.Close()
			return TRow{}, false, err
		}
		tr, ok, err := it.in.Next()
		if err != nil || !ok {
			return TRow{}, false, err
		}
		out, err := FlattenRows(it.f, []TRow{tr}, it.ctx)
		if err != nil {
			it.Close()
			return TRow{}, false, err
		}
		it.pending = out
	}
}

func (it *flattenIter) Close() { it.closed = true; it.pending = nil; it.in.Close() }

package exec_test

import (
	"fmt"
	"sort"
	"strings"
	"testing"
	"time"

	"dyntables/internal/catalog"
	"dyntables/internal/delta"
	"dyntables/internal/exec"
	"dyntables/internal/hlc"
	"dyntables/internal/plan"
	"dyntables/internal/sql"
	"dyntables/internal/storage"
	"dyntables/internal/types"
)

// harness wires a fake catalog of storage tables to the binder and
// executor.
type harness struct {
	t       *testing.T
	tables  map[string]*storage.Table
	views   map[string]string
	nextTS  int64
	entryID int64
	ids     map[string]int64
}

func newHarness(t *testing.T) *harness {
	return &harness{
		t:      t,
		tables: map[string]*storage.Table{},
		views:  map[string]string{},
		nextTS: 1,
		ids:    map[string]int64{},
	}
}

func (h *harness) ts() hlc.Timestamp {
	h.nextTS++
	return hlc.Timestamp{WallMicros: h.nextTS}
}

// table creates a table with columns "name kind" and inserts the rows.
func (h *harness) table(name string, cols string, rows ...types.Row) *storage.Table {
	var schema types.Schema
	for _, c := range strings.Split(cols, ",") {
		parts := strings.Fields(strings.TrimSpace(c))
		kind, err := types.KindFromName(parts[1])
		if err != nil {
			h.t.Fatalf("bad kind %q: %v", parts[1], err)
		}
		schema.Columns = append(schema.Columns, types.Column{Name: parts[0], Kind: kind})
	}
	tb := storage.NewTable(schema, h.ts())
	if len(rows) > 0 {
		var cs delta.ChangeSet
		for _, r := range rows {
			cs.AddInsert(tb.NextRowID(), r)
		}
		if _, err := tb.Apply(cs, h.ts()); err != nil {
			h.t.Fatalf("seed %s: %v", name, err)
		}
	}
	h.tables[strings.ToUpper(name)] = tb
	h.entryID++
	h.ids[strings.ToUpper(name)] = h.entryID
	return tb
}

func (h *harness) view(name, query string) {
	h.views[strings.ToUpper(name)] = query
	h.entryID++
	h.ids[strings.ToUpper(name)] = h.entryID
}

// ResolveTable implements plan.Resolver.
func (h *harness) ResolveTable(name string) (*plan.Source, error) {
	key := strings.ToUpper(name)
	if viewSQL, ok := h.views[key]; ok {
		return &plan.Source{
			EntryID: h.ids[key], Name: name, Kind: catalog.KindView, ViewSQL: viewSQL,
		}, nil
	}
	tb, ok := h.tables[key]
	if !ok {
		return nil, fmt.Errorf("no such table %q", name)
	}
	return &plan.Source{
		EntryID: h.ids[key], Name: name, Kind: catalog.KindTable, Table: tb,
	}, nil
}

// run parses, binds, optimizes and executes a SELECT.
func (h *harness) run(query string) []exec.TRow {
	h.t.Helper()
	rows, err := h.tryRun(query)
	if err != nil {
		h.t.Fatalf("run %q: %v", query, err)
	}
	return rows
}

func (h *harness) tryRun(query string) ([]exec.TRow, error) {
	stmt, err := sql.Parse(query)
	if err != nil {
		return nil, err
	}
	sel, ok := stmt.(*sql.SelectStmt)
	if !ok {
		return nil, fmt.Errorf("not a select: %T", stmt)
	}
	bound, err := plan.NewBinder(h).BindSelect(sel)
	if err != nil {
		return nil, err
	}
	p := plan.Optimize(bound.Plan)
	ctx := &exec.Context{
		RowsOf: func(s *plan.Scan) (map[string]types.Row, error) {
			return s.Table.Rows(int64(s.Table.VersionCount()))
		},
		Now: time.Date(2025, 4, 1, 12, 0, 0, 0, time.UTC),
	}
	return exec.Run(p, ctx)
}

// sortedRender renders rows sorted for comparison.
func sortedRender(rows []exec.TRow) []string {
	out := make([]string, len(rows))
	for i, r := range rows {
		out[i] = r.Row.String()
	}
	sort.Strings(out)
	return out
}

func expectRows(t *testing.T, rows []exec.TRow, want ...string) {
	t.Helper()
	got := sortedRender(rows)
	sort.Strings(want)
	if len(got) != len(want) {
		t.Fatalf("got %d rows %v, want %d %v", len(got), got, len(want), want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Errorf("row %d: got %s, want %s", i, got[i], want[i])
		}
	}
}

func ints(vals ...int64) types.Row {
	r := make(types.Row, len(vals))
	for i, v := range vals {
		r[i] = types.NewInt(v)
	}
	return r
}

func TestProjectFilter(t *testing.T) {
	h := newHarness(t)
	h.table("t", "a int, b int", ints(1, 10), ints(2, 20), ints(3, 30))
	rows := h.run(`SELECT a, b * 2 AS dbl FROM t WHERE a >= 2`)
	expectRows(t, rows, "[2, 40]", "[3, 60]")
}

func TestRowIDsPreservedThroughFilterProject(t *testing.T) {
	h := newHarness(t)
	h.table("t", "a int", ints(1), ints(2))
	rows := h.run(`SELECT a + 1 FROM t WHERE a > 0`)
	for _, r := range rows {
		if !strings.HasPrefix(r.ID, "t") {
			t.Errorf("row ID should be the base-table ID, got %q", r.ID)
		}
	}
}

func TestInnerJoin(t *testing.T) {
	h := newHarness(t)
	h.table("orders", "id int, cust int", ints(1, 10), ints(2, 20), ints(3, 99))
	h.table("customers", "id int, tier int", ints(10, 1), ints(20, 2))
	rows := h.run(`SELECT o.id, c.tier FROM orders o JOIN customers c ON o.cust = c.id`)
	expectRows(t, rows, "[1, 1]", "[2, 2]")
}

func TestLeftJoinNullExtension(t *testing.T) {
	h := newHarness(t)
	h.table("orders", "id int, cust int", ints(1, 10), ints(3, 99))
	h.table("customers", "id int, tier int", ints(10, 1))
	rows := h.run(`SELECT o.id, c.tier FROM orders o LEFT JOIN customers c ON o.cust = c.id`)
	expectRows(t, rows, "[1, 1]", "[3, NULL]")
}

func TestRightAndFullJoin(t *testing.T) {
	h := newHarness(t)
	h.table("l", "k int, v int", ints(1, 100), ints(2, 200))
	h.table("r", "k int, w int", ints(2, 20), ints(3, 30))
	rows := h.run(`SELECT l.v, r.w FROM l RIGHT JOIN r ON l.k = r.k`)
	expectRows(t, rows, "[200, 20]", "[NULL, 30]")
	rows = h.run(`SELECT l.v, r.w FROM l FULL OUTER JOIN r ON l.k = r.k`)
	expectRows(t, rows, "[100, NULL]", "[200, 20]", "[NULL, 30]")
}

func TestJoinNullKeysNeverMatch(t *testing.T) {
	h := newHarness(t)
	h.table("l", "k int", types.Row{types.Null}, ints(1))
	h.table("r", "k int", types.Row{types.Null}, ints(1))
	rows := h.run(`SELECT l.k, r.k FROM l JOIN r ON l.k = r.k`)
	expectRows(t, rows, "[1, 1]")
	// Under LEFT JOIN the null-keyed left row survives null-extended.
	rows = h.run(`SELECT l.k, r.k FROM l LEFT JOIN r ON l.k = r.k`)
	expectRows(t, rows, "[1, 1]", "[NULL, NULL]")
}

func TestGroupByAggregates(t *testing.T) {
	h := newHarness(t)
	h.table("sales", "region int, amount int",
		ints(1, 10), ints(1, 20), ints(2, 5), ints(2, 7), ints(2, 9))
	rows := h.run(`SELECT region, count(*), sum(amount), min(amount), max(amount) FROM sales GROUP BY region`)
	expectRows(t, rows, "[1, 2, 30, 10, 20]", "[2, 3, 21, 5, 9]")
}

func TestGroupByAll(t *testing.T) {
	h := newHarness(t)
	h.table("sales", "region int, amount int", ints(1, 10), ints(1, 20), ints(2, 5))
	rows := h.run(`SELECT region, sum(amount) FROM sales GROUP BY ALL`)
	expectRows(t, rows, "[1, 30]", "[2, 5]")
}

func TestGlobalAggregateOverEmptyInput(t *testing.T) {
	h := newHarness(t)
	h.table("empty", "a int")
	rows := h.run(`SELECT count(*), sum(a) FROM empty`)
	expectRows(t, rows, "[0, NULL]")
}

func TestCountIfAndAvg(t *testing.T) {
	h := newHarness(t)
	h.table("t", "v int", ints(1), ints(2), ints(3), ints(4))
	rows := h.run(`SELECT count_if(v > 2), avg(v) FROM t`)
	expectRows(t, rows, "[2, 2.5]")
}

func TestCountDistinct(t *testing.T) {
	h := newHarness(t)
	h.table("t", "v int", ints(1), ints(1), ints(2), ints(2), ints(3))
	rows := h.run(`SELECT count(DISTINCT v) FROM t`)
	expectRows(t, rows, "[3]")
}

func TestAggregateSkipsNulls(t *testing.T) {
	h := newHarness(t)
	h.table("t", "v int", ints(1), types.Row{types.Null}, ints(3))
	rows := h.run(`SELECT count(*), count(v), sum(v) FROM t`)
	expectRows(t, rows, "[3, 2, 4]")
}

func TestHaving(t *testing.T) {
	h := newHarness(t)
	h.table("sales", "region int, amount int",
		ints(1, 10), ints(1, 20), ints(2, 5))
	rows := h.run(`SELECT region, count(*) FROM sales GROUP BY region HAVING count(*) > 1`)
	expectRows(t, rows, "[1, 2]")
}

func TestGroupByExpressionMatching(t *testing.T) {
	h := newHarness(t)
	h.table("t", "v int", ints(5), ints(15), ints(25))
	// The select item repeats the group expression (v / 10 truncated via floor).
	rows := h.run(`SELECT floor(v / 10), count(*) FROM t GROUP BY floor(v / 10)`)
	expectRows(t, rows, "[0, 1]", "[1, 1]", "[2, 1]")
}

func TestUngroupedColumnRejected(t *testing.T) {
	h := newHarness(t)
	h.table("t", "a int, b int", ints(1, 2))
	if _, err := h.tryRun(`SELECT a, b, count(*) FROM t GROUP BY a`); err == nil {
		t.Error("ungrouped column must be rejected")
	}
}

func TestWindowRowNumberAndRank(t *testing.T) {
	h := newHarness(t)
	h.table("t", "grp int, v int",
		ints(1, 30), ints(1, 10), ints(1, 20), ints(2, 5), ints(2, 5))
	rows := h.run(`SELECT grp, v, row_number() OVER (PARTITION BY grp ORDER BY v) FROM t`)
	expectRows(t, rows,
		"[1, 10, 1]", "[1, 20, 2]", "[1, 30, 3]", "[2, 5, 1]", "[2, 5, 2]")

	rows = h.run(`SELECT grp, v, rank() OVER (PARTITION BY grp ORDER BY v) FROM t`)
	expectRows(t, rows,
		"[1, 10, 1]", "[1, 20, 2]", "[1, 30, 3]", "[2, 5, 1]", "[2, 5, 1]")
}

func TestWindowCumulativeSum(t *testing.T) {
	h := newHarness(t)
	h.table("t", "grp int, v int", ints(1, 1), ints(1, 2), ints(1, 3))
	rows := h.run(`SELECT v, sum(v) OVER (PARTITION BY grp ORDER BY v) FROM t`)
	expectRows(t, rows, "[1, 1]", "[2, 3]", "[3, 6]")
	// Without ORDER BY: whole-partition aggregate.
	rows = h.run(`SELECT v, sum(v) OVER (PARTITION BY grp) FROM t`)
	expectRows(t, rows, "[1, 6]", "[2, 6]", "[3, 6]")
}

func TestWindowLagLead(t *testing.T) {
	h := newHarness(t)
	h.table("t", "v int", ints(1), ints(2), ints(3))
	rows := h.run(`SELECT v, lag(v) OVER (ORDER BY v), lead(v) OVER (ORDER BY v) FROM t`)
	expectRows(t, rows, "[1, NULL, 2]", "[2, 1, 3]", "[3, 2, NULL]")
}

func TestWindowOverAggregate(t *testing.T) {
	h := newHarness(t)
	h.table("sales", "region int, amount int",
		ints(1, 10), ints(1, 20), ints(2, 5))
	// rank regions by their total.
	rows := h.run(`SELECT region, sum(amount) total, rank() OVER (ORDER BY sum(amount) DESC) FROM sales GROUP BY region`)
	expectRows(t, rows, "[1, 30, 1]", "[2, 5, 2]")
}

func TestUnionAll(t *testing.T) {
	h := newHarness(t)
	h.table("a", "v int", ints(1), ints(2))
	h.table("b", "v int", ints(2), ints(3))
	rows := h.run(`SELECT v FROM a UNION ALL SELECT v FROM b`)
	expectRows(t, rows, "[1]", "[2]", "[2]", "[3]")
	// IDs are branch-tagged and unique.
	ids := map[string]bool{}
	for _, r := range rows {
		if ids[r.ID] {
			t.Errorf("duplicate union row ID %q", r.ID)
		}
		ids[r.ID] = true
	}
}

func TestDistinct(t *testing.T) {
	h := newHarness(t)
	h.table("t", "v int", ints(1), ints(1), ints(2))
	rows := h.run(`SELECT DISTINCT v FROM t`)
	expectRows(t, rows, "[1]", "[2]")
}

func TestOrderByAndLimit(t *testing.T) {
	h := newHarness(t)
	h.table("t", "v int", ints(3), ints(1), ints(2))
	rows := h.run(`SELECT v FROM t ORDER BY v DESC LIMIT 2`)
	if len(rows) != 2 || rows[0].Row[0].Int() != 3 || rows[1].Row[0].Int() != 2 {
		t.Errorf("order/limit: %v", sortedRender(rows))
	}
}

func TestVariantPathAndFlatten(t *testing.T) {
	h := newHarness(t)
	payload := func(doc string) types.Value {
		v, err := types.ParseVariant(doc)
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	h.table("events", "id int, payload variant",
		types.Row{types.NewInt(1), payload(`{"items": ["a", "b"], "n": 5}`)},
		types.Row{types.NewInt(2), payload(`{"items": [], "n": 7}`)},
	)
	rows := h.run(`SELECT id, payload:n::int FROM events`)
	expectRows(t, rows, "[1, 5]", "[2, 7]")

	rows = h.run(`SELECT e.id, f.value::text, f.index FROM events e, LATERAL FLATTEN(input => e.payload:items) f`)
	expectRows(t, rows, "[1, a, 0]", "[1, b, 1]")
}

func TestListing1EndToEnd(t *testing.T) {
	h := newHarness(t)
	payload := func(doc string) types.Value {
		v, err := types.ParseVariant(doc)
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	h.table("trains", "id int, name text",
		types.Row{types.NewInt(7), types.NewString("Express")})
	h.table("train_events", "type text, payload variant",
		types.Row{types.NewString("ARRIVAL"), payload(`{"train_id": 7, "time": "2025-04-01 10:17:00", "schedule_id": 3}`)},
		types.Row{types.NewString("DEPARTURE"), payload(`{"train_id": 7, "time": "2025-04-01 10:30:00", "schedule_id": 3}`)},
	)
	h.table("schedule", "id int, expected_arrival_time timestamp",
		types.Row{types.NewInt(3), types.NewTimestamp(time.Date(2025, 4, 1, 10, 0, 0, 0, time.UTC))})

	// The train_arrivals defining query from Listing 1.
	arrivals := h.run(`SELECT
		t.id train_id,
		e.payload:time::timestamp arrival_time,
		e.payload:schedule_id::int schedule_id
	FROM train_events e
	JOIN trains t ON e.payload:train_id::int = t.id
	WHERE e.type = 'ARRIVAL'`)
	if len(arrivals) != 1 {
		t.Fatalf("arrivals: %v", sortedRender(arrivals))
	}

	// The delayed_trains defining query, over a view standing in for the
	// upstream DT.
	h.view("train_arrivals", `SELECT
		t.id train_id,
		e.payload:time::timestamp arrival_time,
		e.payload:schedule_id::int schedule_id
	FROM train_events e
	JOIN trains t ON e.payload:train_id::int = t.id
	WHERE e.type = 'ARRIVAL'`)

	delayed := h.run(`SELECT train_id,
		date_trunc(hour, s.expected_arrival_time) hour,
		count_if(arrival_time - s.expected_arrival_time > '10 minutes') num_delays
	FROM train_arrivals a
	JOIN schedule s ON a.schedule_id = s.id
	GROUP BY ALL`)
	if len(delayed) != 1 {
		t.Fatalf("delayed: %v", sortedRender(delayed))
	}
	row := delayed[0].Row
	if row[0].Int() != 7 {
		t.Errorf("train_id: %v", row[0])
	}
	if row[2].Int() != 1 {
		t.Errorf("num_delays: %v (arrival 10:17 vs expected 10:00 is >10m late)", row[2])
	}
}

func TestViewExpansion(t *testing.T) {
	h := newHarness(t)
	h.table("t", "a int", ints(1), ints(2), ints(3))
	h.view("big", `SELECT a FROM t WHERE a > 1`)
	rows := h.run(`SELECT a FROM big WHERE a < 3`)
	expectRows(t, rows, "[2]")
}

func TestNestedViews(t *testing.T) {
	h := newHarness(t)
	h.table("t", "a int", ints(1), ints(2), ints(3), ints(4))
	h.view("v1", `SELECT a FROM t WHERE a > 1`)
	h.view("v2", `SELECT a FROM v1 WHERE a < 4`)
	rows := h.run(`SELECT a FROM v2`)
	expectRows(t, rows, "[2]", "[3]")
}

func TestViewCycleDetected(t *testing.T) {
	h := newHarness(t)
	h.view("v1", `SELECT a FROM v2`)
	h.view("v2", `SELECT a FROM v1`)
	if _, err := h.tryRun(`SELECT * FROM v1`); err == nil {
		t.Error("view cycle must be detected")
	}
}

func TestSubquery(t *testing.T) {
	h := newHarness(t)
	h.table("t", "a int, b int", ints(1, 10), ints(2, 20))
	rows := h.run(`SELECT x FROM (SELECT a + b AS x FROM t) sub WHERE x > 15`)
	expectRows(t, rows, "[22]")
}

func TestCaseExpression(t *testing.T) {
	h := newHarness(t)
	h.table("t", "v int", ints(1), ints(5), ints(10))
	rows := h.run(`SELECT CASE WHEN v >= 10 THEN 'high' WHEN v >= 5 THEN 'mid' ELSE 'low' END FROM t`)
	expectRows(t, rows, "[low]", "[mid]", "[high]")
}

func TestThreeValuedLogic(t *testing.T) {
	h := newHarness(t)
	h.table("t", "v int", ints(1), types.Row{types.Null})
	// NULL > 0 is NULL, which filters out.
	rows := h.run(`SELECT v FROM t WHERE v > 0`)
	expectRows(t, rows, "[1]")
	rows = h.run(`SELECT v FROM t WHERE v IS NULL`)
	expectRows(t, rows, "[NULL]")
	rows = h.run(`SELECT v FROM t WHERE v > 0 OR v IS NULL`)
	expectRows(t, rows, "[1]", "[NULL]")
}

func TestDivisionByZeroErrors(t *testing.T) {
	h := newHarness(t)
	h.table("t", "v int", ints(0))
	if _, err := h.tryRun(`SELECT 1 / v FROM t`); err == nil {
		t.Error("division by zero must error (it fails refreshes, §3.3.3)")
	}
}

func TestAmbiguousColumnRejected(t *testing.T) {
	h := newHarness(t)
	h.table("a", "id int", ints(1))
	h.table("b", "id int", ints(1))
	if _, err := h.tryRun(`SELECT id FROM a JOIN b ON a.id = b.id`); err == nil {
		t.Error("ambiguous column must be rejected")
	}
}

func TestUnknownColumnAndTable(t *testing.T) {
	h := newHarness(t)
	h.table("t", "a int", ints(1))
	if _, err := h.tryRun(`SELECT nope FROM t`); err == nil {
		t.Error("unknown column")
	}
	if _, err := h.tryRun(`SELECT a FROM missing`); err == nil {
		t.Error("unknown table")
	}
}

func TestSelectStar(t *testing.T) {
	h := newHarness(t)
	h.table("t", "a int, b int", ints(1, 2))
	rows := h.run(`SELECT * FROM t`)
	expectRows(t, rows, "[1, 2]")
	h.table("u", "c int", ints(9))
	rows = h.run(`SELECT u.*, t.a FROM t JOIN u ON true`)
	expectRows(t, rows, "[9, 1]")
}

func TestIntervalComparisonCoercion(t *testing.T) {
	h := newHarness(t)
	base := time.Date(2025, 4, 1, 10, 0, 0, 0, time.UTC)
	h.table("t", "a timestamp, b timestamp",
		types.Row{types.NewTimestamp(base.Add(15 * time.Minute)), types.NewTimestamp(base)},
		types.Row{types.NewTimestamp(base.Add(5 * time.Minute)), types.NewTimestamp(base)},
	)
	rows := h.run(`SELECT a - b FROM t WHERE a - b > '10 minutes'`)
	if len(rows) != 1 {
		t.Fatalf("interval filter: %v", sortedRender(rows))
	}
	if rows[0].Row[0].Interval() != 15*time.Minute {
		t.Errorf("interval value: %v", rows[0].Row[0])
	}
}

func TestAggregateRowIDsStableAcrossRuns(t *testing.T) {
	h := newHarness(t)
	h.table("t", "grp int, v int", ints(1, 10), ints(2, 20))
	first := h.run(`SELECT grp, sum(v) FROM t GROUP BY grp`)
	second := h.run(`SELECT grp, sum(v) FROM t GROUP BY grp`)
	ids := func(rows []exec.TRow) []string {
		out := make([]string, len(rows))
		for i, r := range rows {
			out[i] = r.ID
		}
		sort.Strings(out)
		return out
	}
	a, b := ids(first), ids(second)
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("aggregate row IDs must be stable: %v vs %v", a, b)
		}
	}
	for _, id := range a {
		if !strings.HasPrefix(id, "g:") {
			t.Errorf("aggregate row ID must carry plaintext prefix: %q", id)
		}
	}
}

func TestOptimizerPushesFilterBelowJoin(t *testing.T) {
	h := newHarness(t)
	h.table("l", "k int, v int", ints(1, 1))
	h.table("r", "k int, w int", ints(1, 2))
	stmt, err := sql.Parse(`SELECT l.v FROM l JOIN r ON l.k = r.k WHERE l.v > 0 AND r.w > 0`)
	if err != nil {
		t.Fatal(err)
	}
	bound, err := plan.NewBinder(h).BindSelect(stmt.(*sql.SelectStmt))
	if err != nil {
		t.Fatal(err)
	}
	optimized := plan.Optimize(bound.Plan)
	explain := plan.Explain(optimized)
	// After pushdown, filters sit beneath the join (the join's children
	// include Filter nodes) and no filter sits directly above it.
	lines := strings.Split(strings.TrimSpace(explain), "\n")
	joinDepth, filterAboveJoin := -1, false
	for _, line := range lines {
		depth := (len(line) - len(strings.TrimLeft(line, " "))) / 2
		switch {
		case strings.Contains(line, "Join["):
			joinDepth = depth
		case strings.Contains(line, "Filter") && joinDepth == -1:
			filterAboveJoin = true
		}
	}
	if filterAboveJoin {
		t.Errorf("filter should be pushed below the join:\n%s", explain)
	}
	// Both join inputs must be filtered.
	if strings.Count(explain, "Filter") < 2 {
		t.Errorf("expected filters on both join inputs:\n%s", explain)
	}
	// Results stay correct.
	rows := h.run(`SELECT l.v FROM l JOIN r ON l.k = r.k WHERE l.v > 0 AND r.w > 0`)
	expectRows(t, rows, "[1]")
}

func TestConstantFolding(t *testing.T) {
	h := newHarness(t)
	h.table("t", "a int", ints(1))
	stmt, _ := sql.Parse(`SELECT a + (1 + 2) * 3 FROM t`)
	bound, err := plan.NewBinder(h).BindSelect(stmt.(*sql.SelectStmt))
	if err != nil {
		t.Fatal(err)
	}
	optimized := plan.Optimize(bound.Plan)
	proj := optimized.(*plan.Project)
	bin, ok := proj.Exprs[0].(*plan.BinOp)
	if !ok {
		t.Fatalf("expr: %T", proj.Exprs[0])
	}
	if lit, ok := bin.R.(*plan.Lit); !ok || lit.Val.Int() != 9 {
		t.Errorf("constant (1+2)*3 should fold to 9: %v", bin.R)
	}
}

func TestDependencyTracking(t *testing.T) {
	h := newHarness(t)
	h.table("t", "a int", ints(1))
	h.view("v", `SELECT a FROM t`)
	stmt, _ := sql.Parse(`SELECT a FROM v`)
	bound, err := plan.NewBinder(h).BindSelect(stmt.(*sql.SelectStmt))
	if err != nil {
		t.Fatal(err)
	}
	// Both the view and the underlying table are dependencies.
	if len(bound.Deps) != 2 {
		t.Errorf("deps: %v", bound.Deps)
	}
}

func TestCoalesceIffFunctions(t *testing.T) {
	h := newHarness(t)
	h.table("t", "a int", ints(1), types.Row{types.Null})
	rows := h.run(`SELECT coalesce(a, 0), iff(a IS NULL, 'missing', 'present') FROM t`)
	expectRows(t, rows, "[1, present]", "[0, missing]")
}

func TestSelectWithoutFrom(t *testing.T) {
	h := newHarness(t)
	rows := h.run(`SELECT 1 + 1, 'x'`)
	expectRows(t, rows, "[2, x]")
}

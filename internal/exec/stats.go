package exec

import (
	"sync"
	"time"

	"dyntables/internal/plan"
)

// NodeStat is the accumulated execution statistics of one plan node:
// rows produced, how many times the node was (re)executed, and its
// cumulative wall time including children (Postgres-style inclusive
// actual time).
type NodeStat struct {
	Rows  int64
	Loops int64
	Time  time.Duration
}

// NodeStats collects per-plan-node statistics for EXPLAIN ANALYZE.
// Attach one to Context.Stats to enable collection; a nil collector
// costs nothing. Safe for concurrent use (parallel differentiation
// branches share one plan).
type NodeStats struct {
	mu sync.Mutex
	m  map[plan.Node]*NodeStat
}

// NewNodeStats builds an empty collector.
func NewNodeStats() *NodeStats {
	return &NodeStats{m: make(map[plan.Node]*NodeStat)}
}

// Lookup returns a copy of the node's accumulated stats; ok is false
// when the node never executed.
func (s *NodeStats) Lookup(n plan.Node) (NodeStat, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	st, ok := s.m[n]
	if !ok {
		return NodeStat{}, false
	}
	return *st, true
}

func (s *NodeStats) observe(n plan.Node, rows int64, d time.Duration) {
	s.mu.Lock()
	st := s.m[n]
	if st == nil {
		st = &NodeStat{}
		s.m[n] = st
	}
	st.Rows += rows
	st.Loops++
	st.Time += d
	s.mu.Unlock()
}

// addRow accumulates streaming-iterator progress: one loop is counted
// by open (loop=true) and each produced row by rows=1.
func (s *NodeStats) add(n plan.Node, rows int64, d time.Duration, loop bool) {
	s.mu.Lock()
	st := s.m[n]
	if st == nil {
		st = &NodeStat{}
		s.m[n] = st
	}
	st.Rows += rows
	st.Time += d
	if loop {
		st.Loops++
	}
	s.mu.Unlock()
}

// statIter wraps a pipelined iterator, attributing rows out and
// cumulative wall time (inclusive of children) to its plan node.
type statIter struct {
	in     RowIter
	stats  *NodeStats
	n      plan.Node
	opened bool
}

func (it *statIter) Next() (TRow, bool, error) {
	loop := !it.opened
	it.opened = true
	start := time.Now()
	tr, ok, err := it.in.Next()
	rows := int64(0)
	if ok {
		rows = 1
	}
	it.stats.add(it.n, rows, time.Since(start), loop)
	return tr, ok, err
}

func (it *statIter) Close() { it.in.Close() }

package exec_test

import (
	"context"
	"errors"
	"sort"
	"testing"
	"time"

	"dyntables/internal/exec"
	"dyntables/internal/plan"
	"dyntables/internal/sql"
	"dyntables/internal/types"
)

// stream plans a SELECT and returns a cursor plus the exec context.
func (h *harness) stream(query string, ctx context.Context) (exec.RowIter, error) {
	stmt, err := sql.Parse(query)
	if err != nil {
		return nil, err
	}
	bound, err := plan.NewBinder(h).BindSelect(stmt.(*sql.SelectStmt))
	if err != nil {
		return nil, err
	}
	p := plan.Optimize(bound.Plan)
	ec := &exec.Context{
		RowsOf: func(s *plan.Scan) (map[string]types.Row, error) {
			return s.Table.Rows(int64(s.Table.VersionCount()))
		},
		Now: time.Date(2025, 4, 1, 12, 0, 0, 0, time.UTC),
		Ctx: ctx,
	}
	return exec.Stream(p, ec), nil
}

// TestStreamMatchesRun checks that the cursor produces exactly the rows
// the materializing executor produces, across pipelined and blocking
// operators.
func TestStreamMatchesRun(t *testing.T) {
	h := newHarness(t)
	h.table("t", "a int, b int",
		ints(1, 10), ints(2, 20), ints(3, 30), ints(4, 40))
	h.table("u", "a int, c int", ints(1, 100), ints(3, 300))

	queries := []string{
		`SELECT a, b FROM t WHERE a > 1`,
		`SELECT a, b FROM t ORDER BY a DESC LIMIT 2`,
		`SELECT t.a, b, c FROM t JOIN u ON t.a = u.a`,
		`SELECT a FROM t UNION ALL SELECT a FROM u`,
		`SELECT count(*), sum(b) FROM t`,
		`SELECT DISTINCT a / a FROM t`,
	}
	for _, q := range queries {
		want := sortedRender(h.run(q))
		it, err := h.stream(q, context.Background())
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		rows, err := exec.Collect(it)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		got := sortedRender(rows)
		sort.Strings(want)
		if len(got) != len(want) {
			t.Fatalf("%s: got %v, want %v", q, got, want)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("%s: row %d: got %s, want %s", q, i, got[i], want[i])
			}
		}
	}
}

// TestStreamCancellation checks that a canceled context stops the cursor
// with the context's error.
func TestStreamCancellation(t *testing.T) {
	h := newHarness(t)
	var rows []types.Row
	for i := int64(0); i < 200; i++ {
		rows = append(rows, ints(i, i*2))
	}
	h.table("big", "a int, b int", rows...)

	ctx, cancel := context.WithCancel(context.Background())
	it, err := h.stream(`SELECT a FROM big WHERE b >= 0`, ctx)
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	for i := 0; i < 5; i++ {
		if _, ok, err := it.Next(); err != nil || !ok {
			t.Fatalf("row %d: ok=%v err=%v", i, ok, err)
		}
	}
	cancel()
	_, ok, err := it.Next()
	if ok {
		t.Fatal("Next produced a row after cancellation")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	// The iterator stays closed afterwards.
	if _, ok, _ := it.Next(); ok {
		t.Fatal("iterator produced rows after Close")
	}
}

// TestStreamLimitShortCircuits checks that Limit stops pulling from its
// input once satisfied (pipelined, not materialized).
func TestStreamLimitShortCircuits(t *testing.T) {
	h := newHarness(t)
	var rows []types.Row
	for i := int64(0); i < 100; i++ {
		rows = append(rows, ints(i))
	}
	h.table("t", "a int", rows...)

	it, err := h.stream(`SELECT a FROM t LIMIT 3`, context.Background())
	if err != nil {
		t.Fatal(err)
	}
	out, err := exec.Collect(it)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 3 {
		t.Fatalf("want 3 rows, got %d", len(out))
	}
}

// TestStreamParams checks bind-parameter evaluation through the cursor.
func TestStreamParams(t *testing.T) {
	h := newHarness(t)
	h.table("t", "a int", ints(1), ints(2), ints(3))

	stmt, err := sql.Parse(`SELECT a FROM t WHERE a >= ?`)
	if err != nil {
		t.Fatal(err)
	}
	bound, err := plan.NewBinder(h).BindSelect(stmt.(*sql.SelectStmt))
	if err != nil {
		t.Fatal(err)
	}
	ec := &exec.Context{
		RowsOf: func(s *plan.Scan) (map[string]types.Row, error) {
			return s.Table.Rows(int64(s.Table.VersionCount()))
		},
		Now:    time.Now(),
		Params: &plan.Params{Positional: []types.Value{types.NewInt(2)}},
	}
	out, err := exec.Collect(exec.Stream(plan.Optimize(bound.Plan), ec))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Fatalf("want 2 rows, got %d", len(out))
	}

	// Unbound parameters surface as evaluation errors, not wrong results.
	ec.Params = nil
	if _, err := exec.Collect(exec.Stream(plan.Optimize(bound.Plan), ec)); err == nil {
		t.Fatal("want unbound-parameter error")
	}
}

// Package exec evaluates bound query plans: Run materializes a plan's
// full result, Collect/Stream drive the pull-based iterator the session
// cursors wrap (context-cancelable, one row at a time over pinned
// source versions). The executor is deliberately plain — nested-loop
// joins, hash aggregation, full sorts — because the engine's focus is
// refresh semantics, not single-query speed.
package exec

import (
	"context"
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"
	"time"

	"dyntables/internal/plan"
	"dyntables/internal/sql"
	"dyntables/internal/types"
)

// TRow is a row tagged with its derived row identifier (§5.5: incremental
// DTs define a unique ID for every row in the query result).
type TRow struct {
	ID  string
	Row types.Row
}

// Counters collects execution statistics; the IVM ablation benches use
// them to compare differentiation strategies without depending on
// wall-clock noise.
type Counters struct {
	ScanRows     int64 // rows produced by Scan nodes
	ScanCalls    int64 // number of Scan node executions
	ScanBytes    int64 // estimated bytes of rows produced by Scan nodes
	JoinProbes   int64
	OutputRows   int64
	NodesVisited int64
}

// Merge folds another counter set into c. Parallel differentiation gives
// each concurrent branch its own Counters and merges after the join, so
// the fields stay plain int64s on the sequential fast path.
func (c *Counters) Merge(o *Counters) {
	c.ScanRows += o.ScanRows
	c.ScanCalls += o.ScanCalls
	c.ScanBytes += o.ScanBytes
	c.JoinProbes += o.JoinProbes
	c.OutputRows += o.OutputRows
	c.NodesVisited += o.NodesVisited
}

// Context supplies the executor's environment.
type Context struct {
	// RowsOf returns the pinned contents for a scan (the caller resolves
	// the table version per §5.3).
	RowsOf func(s *plan.Scan) (map[string]types.Row, error)
	// BatchOf, when non-nil, returns the pinned contents for a scan as a
	// shared columnar batch (sorted by row ID), enabling the vectorized
	// Scan→Filter→Project→Limit fast path. Scans outside batchable
	// chains, and executions collecting per-node stats, use RowsOf.
	BatchOf func(s *plan.Scan) (*types.Batch, error)
	// Now is CURRENT_TIMESTAMP for this execution.
	Now time.Time
	// Counters, when non-nil, accumulates execution statistics.
	Counters *Counters
	// Params carries bind-parameter values for placeholder expressions.
	Params *plan.Params
	// Ctx, when non-nil, cancels execution: operators check it between
	// rows and abort with its error.
	Ctx context.Context
	// Stats, when non-nil, collects per-plan-node rows and wall time
	// (EXPLAIN ANALYZE); nil — the common case — costs nothing.
	Stats *NodeStats
}

func (c *Context) eval() *plan.EvalContext {
	return &plan.EvalContext{Now: c.Now, Params: c.Params}
}

// canceled returns the cancellation error, if any.
func (c *Context) canceled() error {
	if c.Ctx != nil {
		return c.Ctx.Err()
	}
	return nil
}

// tickEvery is how many rows a hot operator loop may process between
// cancellation checks: frequent enough that heavy joins and aggregations
// abort promptly, rare enough to stay off the profile.
const tickEvery = 4096

// tick counts loop iterations and polls for cancellation periodically.
func (c *Context) tick(n *int) error {
	*n++
	if *n%tickEvery == 0 {
		return c.canceled()
	}
	return nil
}

func (c *Context) count(f func(*Counters)) {
	if c.Counters != nil {
		f(c.Counters)
	}
}

// Run executes a logical plan and returns the result rows with derived row
// IDs. Result order is unspecified except beneath Sort.
func Run(n plan.Node, ctx *Context) ([]TRow, error) {
	if ctx.Stats == nil {
		return runNode(n, ctx)
	}
	start := time.Now()
	rows, err := runNode(n, ctx)
	ctx.Stats.observe(n, int64(len(rows)), time.Since(start))
	return rows, err
}

// runNode dispatches one plan node; Run wraps it with the optional
// per-node stats observation.
func runNode(n plan.Node, ctx *Context) ([]TRow, error) {
	if err := ctx.canceled(); err != nil {
		return nil, err
	}
	if ctx.useBatches() && batchable(n) {
		res, err := runBatch(n, ctx)
		if err != nil {
			return nil, err
		}
		return res.materialize(), nil
	}
	ctx.count(func(c *Counters) { c.NodesVisited++ })
	switch x := n.(type) {
	case *plan.Scan:
		return runScan(x, ctx)
	case *plan.Filter:
		return runFilter(x, ctx)
	case *plan.Project:
		return runProject(x, ctx)
	case *plan.Join:
		return runJoin(x, ctx)
	case *plan.Aggregate:
		return runAggregate(x, ctx)
	case *plan.Window:
		return runWindow(x, ctx)
	case *plan.UnionAll:
		return runUnionAll(x, ctx)
	case *plan.Distinct:
		return runDistinct(x, ctx)
	case *plan.Flatten:
		return runFlatten(x, ctx)
	case *plan.Sort:
		return runSort(x, ctx)
	case *plan.Limit:
		return runLimit(x, ctx)
	case *plan.Values:
		return runValues(x, ctx)
	default:
		return nil, fmt.Errorf("exec: unsupported plan node %T", n)
	}
}

func runScan(s *plan.Scan, ctx *Context) ([]TRow, error) {
	rows, err := ctx.RowsOf(s)
	if err != nil {
		return nil, err
	}
	out := make([]TRow, 0, len(rows))
	for id, r := range rows {
		out = append(out, TRow{ID: id, Row: r})
	}
	if ctx.Counters != nil {
		ctx.Counters.ScanCalls++
		ctx.Counters.ScanRows += int64(len(out))
		ctx.Counters.ScanBytes += approxRowsBytes(out)
	}
	return out, nil
}

// approxRowsBytes estimates the in-memory size of scanned rows — the
// executor's bytes-processed accounting signal. The walk only runs when
// counters are attached, so plain statement execution pays nothing.
func approxRowsBytes(rows []TRow) int64 {
	var n int64
	for i := range rows {
		n += rows[i].Row.ApproxBytes()
	}
	return n
}

func runFilter(f *plan.Filter, ctx *Context) ([]TRow, error) {
	in, err := Run(f.Input, ctx)
	if err != nil {
		return nil, err
	}
	ev := ctx.eval()
	out := in[:0:0]
	ticks := 0
	for _, tr := range in {
		if err := ctx.tick(&ticks); err != nil {
			return nil, err
		}
		ok, err := plan.EvalBool(f.Pred, tr.Row, ev)
		if err != nil {
			return nil, err
		}
		if ok {
			out = append(out, tr)
		}
	}
	return out, nil
}

func runProject(p *plan.Project, ctx *Context) ([]TRow, error) {
	in, err := Run(p.Input, ctx)
	if err != nil {
		return nil, err
	}
	ev := ctx.eval()
	out := make([]TRow, len(in))
	ticks := 0
	for i, tr := range in {
		if err := ctx.tick(&ticks); err != nil {
			return nil, err
		}
		row := make(types.Row, len(p.Exprs))
		for j, e := range p.Exprs {
			v, err := plan.Eval(e, tr.Row, ev)
			if err != nil {
				return nil, err
			}
			row[j] = v
		}
		out[i] = TRow{ID: tr.ID, Row: row}
	}
	return out, nil
}

// normalizeKeyValue reconciles numerically equal values of different kinds
// so that join and grouping keys match across INT and FLOAT, and unwraps
// variant scalars.
func normalizeKeyValue(v types.Value) types.Value {
	switch v.Kind() {
	case types.KindFloat:
		f := v.Float()
		if f == float64(int64(f)) {
			return types.NewInt(int64(f))
		}
	case types.KindVariant:
		switch x := v.Variant().(type) {
		case nil:
			return types.Null
		case float64:
			return normalizeKeyValue(types.NewFloat(x))
		case string:
			return types.NewString(x)
		case bool:
			return types.NewBool(x)
		}
	}
	return v
}

// EvalKey computes the hash key for key expressions over a row; ok is
// false when any key component is NULL (SQL equality never matches NULLs).
// The IVM engine uses it to find join rows and partitions affected by a
// delta (§5.5.1).
func EvalKey(exprs []plan.Expr, row types.Row, now time.Time) (string, bool, error) {
	return evalKey(exprs, row, &plan.EvalContext{Now: now})
}

// evalKey computes a hash key for the expressions; ok is false when any
// key component is NULL (SQL equality never matches NULLs).
func evalKey(exprs []plan.Expr, row types.Row, ev *plan.EvalContext) (string, bool, error) {
	var buf []byte
	ok := true
	for _, e := range exprs {
		v, err := plan.Eval(e, row, ev)
		if err != nil {
			return "", false, err
		}
		if v.IsNull() {
			ok = false
		}
		buf = normalizeKeyValue(v).EncodeKey(buf)
	}
	return string(buf), ok, nil
}

func runJoin(j *plan.Join, ctx *Context) ([]TRow, error) {
	left, err := Run(j.L, ctx)
	if err != nil {
		return nil, err
	}
	right, err := Run(j.R, ctx)
	if err != nil {
		return nil, err
	}
	return JoinRows(j, left, right, ctx)
}

// JoinRows joins two pre-computed inputs using the join node's keys and
// residual. The IVM engine reuses it to join delta streams against
// snapshots without materializing scans twice.
func JoinRows(j *plan.Join, left, right []TRow, ctx *Context) ([]TRow, error) {
	ev := ctx.eval()
	lWidth := j.L.Schema().Len()
	rWidth := j.R.Schema().Len()

	type bucket struct {
		rows []int
	}
	build := make(map[string]*bucket, len(right))
	rightMatched := make([]bool, len(right))
	for i, tr := range right {
		key, ok, err := evalKey(j.RightKeys, tr.Row, ev)
		if err != nil {
			return nil, err
		}
		if !ok && len(j.RightKeys) > 0 {
			continue // NULL keys never match
		}
		b := build[key]
		if b == nil {
			b = &bucket{}
			build[key] = b
		}
		b.rows = append(b.rows, i)
	}

	var out []TRow
	nullRight := make(types.Row, rWidth)
	nullLeft := make(types.Row, lWidth)

	ticks := 0
	for _, ltr := range left {
		key, ok, err := evalKey(j.LeftKeys, ltr.Row, ev)
		if err != nil {
			return nil, err
		}
		matched := false
		if ok || len(j.LeftKeys) == 0 {
			if b := build[key]; b != nil {
				for _, ri := range b.rows {
					if err := ctx.tick(&ticks); err != nil {
						return nil, err
					}
					ctx.count(func(c *Counters) { c.JoinProbes++ })
					rtr := right[ri]
					combined := ltr.Row.Concat(rtr.Row)
					if j.Residual != nil {
						pass, err := plan.EvalBool(j.Residual, combined, ev)
						if err != nil {
							return nil, err
						}
						if !pass {
							continue
						}
					}
					matched = true
					rightMatched[ri] = true
					out = append(out, TRow{ID: joinID(ltr.ID, rtr.ID), Row: combined})
				}
			}
		}
		if !matched && (j.Type == sql.JoinLeft || j.Type == sql.JoinFull) {
			out = append(out, TRow{ID: joinID(ltr.ID, "-"), Row: ltr.Row.Concat(nullRight)})
		}
	}
	if j.Type == sql.JoinRight || j.Type == sql.JoinFull {
		for i, rtr := range right {
			if !rightMatched[i] {
				out = append(out, TRow{ID: joinID("-", rtr.ID), Row: nullLeft.Concat(rtr.Row)})
			}
		}
	}
	return out, nil
}

func joinID(l, r string) string { return "(" + l + "*" + r + ")" }

// JoinRowID derives the combined row ID of a join output row; "-" stands
// for the null-extended side of an outer join.
func JoinRowID(l, r string) string { return joinID(l, r) }

// SplitJoinID splits a combined join row ID back into its two components.
// Embedded IDs (nested joins, union branch tags) contain balanced
// parentheses, so the separator is the '*' at parenthesis depth zero.
func SplitJoinID(id string) (l, r string, ok bool) {
	if len(id) < 3 || id[0] != '(' || id[len(id)-1] != ')' {
		return "", "", false
	}
	inner := id[1 : len(id)-1]
	depth := 0
	for i := 0; i < len(inner); i++ {
		switch inner[i] {
		case '(':
			depth++
		case ')':
			depth--
		case '*':
			if depth == 0 {
				return inner[:i], inner[i+1:], true
			}
		}
	}
	return "", "", false
}

// NormalizeKeyValue exposes key normalization (INT/FLOAT reconciliation,
// variant unwrapping) for callers building grouping keys outside the
// executor.
func NormalizeKeyValue(v types.Value) types.Value { return normalizeKeyValue(v) }

// ---------------------------------------------------------------------------
// aggregation
// ---------------------------------------------------------------------------

type accumulator struct {
	agg plan.AggExpr

	count    int64
	sumInt   int64
	sumFloat float64
	isFloat  bool
	min, max types.Value
	any      types.Value
	distinct map[string]bool
}

func newAccumulator(agg plan.AggExpr) *accumulator {
	acc := &accumulator{agg: agg, min: types.Null, max: types.Null, any: types.Null}
	if agg.Distinct {
		acc.distinct = make(map[string]bool)
	}
	return acc
}

func (a *accumulator) add(row types.Row, ev *plan.EvalContext) error {
	var v types.Value
	if a.agg.Arg != nil {
		var err error
		v, err = plan.Eval(a.agg.Arg, row, ev)
		if err != nil {
			return err
		}
	}
	return a.addValue(v)
}

// addValue folds one already-evaluated argument value into the
// accumulator — the entry point the columnar aggregation loop uses after
// evaluating the argument expression once per column.
func (a *accumulator) addValue(v types.Value) error {
	switch a.agg.Kind {
	case plan.AggCount:
		if a.agg.Arg == nil {
			a.count++
			return nil
		}
		if v.IsNull() {
			return nil
		}
		if a.distinct != nil {
			k := string(normalizeKeyValue(v).EncodeKey(nil))
			if a.distinct[k] {
				return nil
			}
			a.distinct[k] = true
		}
		a.count++
	case plan.AggCountIf:
		if !v.IsNull() && v.Kind() == types.KindBool && v.Bool() {
			a.count++
		}
	case plan.AggSum, plan.AggAvg:
		if v.IsNull() {
			return nil
		}
		if !v.Numeric() {
			return fmt.Errorf("exec: %s requires numeric input, got %s", a.agg.Kind, v.Kind())
		}
		a.count++
		if v.Kind() == types.KindFloat {
			a.isFloat = true
		}
		if a.isFloat {
			a.sumFloat += v.AsFloat()
		} else {
			a.sumInt += v.Int()
			a.sumFloat += v.AsFloat()
		}
	case plan.AggMin, plan.AggMax:
		if v.IsNull() {
			return nil
		}
		ref := a.min
		if a.agg.Kind == plan.AggMax {
			ref = a.max
		}
		if ref.IsNull() {
			a.min, a.max = pick(a.agg.Kind, v, a.min, a.max)
			return nil
		}
		c, err := types.Compare(v, ref)
		if err != nil {
			return err
		}
		if (a.agg.Kind == plan.AggMin && c < 0) || (a.agg.Kind == plan.AggMax && c > 0) {
			a.min, a.max = pick(a.agg.Kind, v, a.min, a.max)
		}
	case plan.AggAnyValue:
		if a.any.IsNull() && !v.IsNull() {
			a.any = v
		}
	}
	return nil
}

func pick(kind plan.AggKind, v, curMin, curMax types.Value) (types.Value, types.Value) {
	if kind == plan.AggMin {
		return v, curMax
	}
	return curMin, v
}

func (a *accumulator) result() types.Value {
	switch a.agg.Kind {
	case plan.AggCount, plan.AggCountIf:
		return types.NewInt(a.count)
	case plan.AggSum:
		if a.count == 0 {
			return types.Null
		}
		if a.isFloat {
			return types.NewFloat(a.sumFloat)
		}
		return types.NewInt(a.sumInt)
	case plan.AggAvg:
		if a.count == 0 {
			return types.Null
		}
		return types.NewFloat(a.sumFloat / float64(a.count))
	case plan.AggMin:
		return a.min
	case plan.AggMax:
		return a.max
	case plan.AggAnyValue:
		return a.any
	default:
		return types.Null
	}
}

func runAggregate(a *plan.Aggregate, ctx *Context) ([]TRow, error) {
	if ctx.useBatches() && batchable(a.Input) {
		res, err := runBatch(a.Input, ctx)
		if err != nil {
			return nil, err
		}
		return aggregateBatch(a, res, nil, ctx)
	}
	in, err := Run(a.Input, ctx)
	if err != nil {
		return nil, err
	}
	return AggregateRows(a, in, ctx)
}

// aggGroup is one group's in-flight state during aggregation, shared by
// the row and columnar aggregation loops.
type aggGroup struct {
	vals types.Row
	accs []*accumulator
}

func newAggGroup(a *plan.Aggregate, vals types.Row) *aggGroup {
	grp := &aggGroup{vals: vals, accs: make([]*accumulator, len(a.Aggs))}
	for i, agg := range a.Aggs {
		grp.accs[i] = newAccumulator(agg)
	}
	return grp
}

// finalizeGroups renders the accumulated groups to output rows in
// first-seen order. A global aggregate (no GROUP BY) over empty input
// yields one row.
func finalizeGroups(a *plan.Aggregate, groups map[string]*aggGroup, order []string) []TRow {
	if len(a.GroupBy) == 0 && len(groups) == 0 {
		groups[""] = newAggGroup(a, nil)
		order = append(order, "")
	}
	out := make([]TRow, 0, len(groups))
	for _, key := range order {
		grp := groups[key]
		row := make(types.Row, 0, len(a.GroupBy)+len(a.Aggs))
		row = append(row, grp.vals...)
		for _, acc := range grp.accs {
			row = append(row, acc.result())
		}
		out = append(out, TRow{ID: GroupRowID(key), Row: row})
	}
	return out
}

// AggregateRows aggregates pre-computed input rows; reused by the IVM
// affected-group recompute rule.
func AggregateRows(a *plan.Aggregate, in []TRow, ctx *Context) ([]TRow, error) {
	ev := ctx.eval()
	groups := make(map[string]*aggGroup)
	order := []string{}

	ticks := 0
	for _, tr := range in {
		if err := ctx.tick(&ticks); err != nil {
			return nil, err
		}
		vals := make(types.Row, len(a.GroupBy))
		var buf []byte
		for i, g := range a.GroupBy {
			v, err := plan.Eval(g, tr.Row, ev)
			if err != nil {
				return nil, err
			}
			vals[i] = v
			buf = normalizeKeyValue(v).EncodeKey(buf)
		}
		key := string(buf)
		grp := groups[key]
		if grp == nil {
			grp = newAggGroup(a, vals)
			groups[key] = grp
			order = append(order, key)
		}
		for _, acc := range grp.accs {
			if err := acc.add(tr.Row, ev); err != nil {
				return nil, err
			}
		}
	}
	return finalizeGroups(a, groups, order), nil
}

// GroupRowID derives the stable row ID for an aggregate output row from
// its encoded group key: a plaintext prefix plus a 64-bit hash (§5.5.2).
func GroupRowID(encodedKey string) string {
	h := fnv.New64a()
	h.Write([]byte(encodedKey))
	return "g:" + strconv.FormatUint(h.Sum64(), 16)
}

// DistinctRowID derives the stable row ID for a distinct output row.
func DistinctRowID(encodedKey string) string {
	h := fnv.New64a()
	h.Write([]byte(encodedKey))
	return "d:" + strconv.FormatUint(h.Sum64(), 16)
}

// ---------------------------------------------------------------------------
// window functions
// ---------------------------------------------------------------------------

func runWindow(w *plan.Window, ctx *Context) ([]TRow, error) {
	in, err := Run(w.Input, ctx)
	if err != nil {
		return nil, err
	}
	return WindowRows(w, in, ctx)
}

// WindowRows applies window functions to pre-computed input; reused by the
// IVM changed-partition recompute rule (§5.5.1).
func WindowRows(w *plan.Window, in []TRow, ctx *Context) ([]TRow, error) {
	ev := ctx.eval()
	partitions := make(map[string][]*partRow)
	var keys []string
	ticks := 0
	for _, tr := range in {
		if err := ctx.tick(&ticks); err != nil {
			return nil, err
		}
		var buf []byte
		for _, pe := range w.PartitionBy {
			v, err := plan.Eval(pe, tr.Row, ev)
			if err != nil {
				return nil, err
			}
			buf = normalizeKeyValue(v).EncodeKey(buf)
		}
		key := string(buf)
		if _, ok := partitions[key]; !ok {
			keys = append(keys, key)
		}
		ok := make([]types.Value, len(w.OrderBy))
		for i, o := range w.OrderBy {
			v, err := plan.Eval(o.Expr, tr.Row, ev)
			if err != nil {
				return nil, err
			}
			ok[i] = v
		}
		partitions[key] = append(partitions[key], &partRow{tr: tr, orderKey: ok})
	}

	var out []TRow
	for _, key := range keys {
		part := partitions[key]
		// Sort by ORDER BY with row-ID tie-break so ties are repeatable
		// across refreshes (§5.5.1 requires repeatable tie-breaking).
		sort.SliceStable(part, func(i, j int) bool {
			for k, o := range w.OrderBy {
				c, err := types.Compare(part[i].orderKey[k], part[j].orderKey[k])
				if err != nil {
					c = 0
				}
				if c != 0 {
					if o.Desc {
						return c > 0
					}
					return c < 0
				}
			}
			return part[i].tr.ID < part[j].tr.ID
		})
		results, err := windowPartition(w, part, ev)
		if err != nil {
			return nil, err
		}
		for i, pr := range part {
			row := pr.tr.Row.Concat(results[i])
			out = append(out, TRow{ID: pr.tr.ID, Row: row})
		}
	}
	return out, nil
}

// partRow pairs a row with its evaluated ORDER BY key during windowing.
type partRow struct {
	tr       TRow
	orderKey []types.Value
}

// windowPartition computes every window function over one sorted partition,
// returning the appended column values per row.
func windowPartition(w *plan.Window, part []*partRow, ev *plan.EvalContext) ([]types.Row, error) {
	n := len(part)
	out := make([]types.Row, n)
	for i := range out {
		out[i] = make(types.Row, len(w.Funcs))
	}
	ordered := len(w.OrderBy) > 0
	for fi, f := range w.Funcs {
		argAt := func(i int) (types.Value, error) {
			if f.Arg == nil {
				return types.Null, nil
			}
			return plan.Eval(f.Arg, part[i].tr.Row, ev)
		}
		switch f.Kind {
		case plan.WinRowNumber:
			for i := 0; i < n; i++ {
				out[i][fi] = types.NewInt(int64(i + 1))
			}
		case plan.WinRank, plan.WinDenseRank:
			rank, dense := int64(1), int64(1)
			for i := 0; i < n; i++ {
				if i > 0 && !sameOrderKey(part[i-1].orderKey, part[i].orderKey) {
					rank = int64(i + 1)
					dense++
				}
				if f.Kind == plan.WinRank {
					out[i][fi] = types.NewInt(rank)
				} else {
					out[i][fi] = types.NewInt(dense)
				}
			}
		case plan.WinLag, plan.WinLead:
			for i := 0; i < n; i++ {
				j := i - int(f.Offset)
				if f.Kind == plan.WinLead {
					j = i + int(f.Offset)
				}
				if j < 0 || j >= n {
					out[i][fi] = types.Null
					continue
				}
				v, err := argAt(j)
				if err != nil {
					return nil, err
				}
				out[i][fi] = v
			}
		case plan.WinFirstValue:
			v, err := argAt(0)
			if err != nil {
				return nil, err
			}
			for i := 0; i < n; i++ {
				out[i][fi] = v
			}
		case plan.WinLastValue:
			v, err := argAt(n - 1)
			if err != nil {
				return nil, err
			}
			for i := 0; i < n; i++ {
				out[i][fi] = v
			}
		case plan.WinSum, plan.WinCount, plan.WinMin, plan.WinMax, plan.WinAvg:
			if err := windowAggregate(f, part, out, fi, ordered, ev); err != nil {
				return nil, err
			}
		default:
			return nil, fmt.Errorf("exec: unsupported window function %s", f.Kind)
		}
	}
	return out, nil
}

// windowAggregate computes aggregate-style window functions: cumulative
// when an ORDER BY is present, whole-partition otherwise.
func windowAggregate(f plan.WindowFunc, part []*partRow, out []types.Row, fi int, ordered bool, ev *plan.EvalContext) error {
	n := len(part)
	var count int64
	var sum float64
	sumIsFloat := false
	var sumInt int64
	minV, maxV := types.Null, types.Null

	emit := func(i int) {
		switch f.Kind {
		case plan.WinCount:
			out[i][fi] = types.NewInt(count)
		case plan.WinSum:
			if count == 0 {
				out[i][fi] = types.Null
			} else if sumIsFloat {
				out[i][fi] = types.NewFloat(sum)
			} else {
				out[i][fi] = types.NewInt(sumInt)
			}
		case plan.WinAvg:
			if count == 0 {
				out[i][fi] = types.Null
			} else {
				out[i][fi] = types.NewFloat(sum / float64(count))
			}
		case plan.WinMin:
			out[i][fi] = minV
		case plan.WinMax:
			out[i][fi] = maxV
		}
	}

	add := func(i int) error {
		var v types.Value
		if f.Arg != nil {
			var err error
			v, err = plan.Eval(f.Arg, part[i].tr.Row, ev)
			if err != nil {
				return err
			}
		}
		if f.Kind == plan.WinCount {
			if f.Arg == nil || !v.IsNull() {
				count++
			}
			return nil
		}
		if v.IsNull() {
			return nil
		}
		switch f.Kind {
		case plan.WinSum, plan.WinAvg:
			if !v.Numeric() {
				return fmt.Errorf("exec: %s requires numeric input", f.Kind)
			}
			count++
			if v.Kind() == types.KindFloat {
				sumIsFloat = true
			}
			sum += v.AsFloat()
			if !sumIsFloat {
				sumInt += v.Int()
			}
		case plan.WinMin:
			if minV.IsNull() {
				minV = v
			} else if c, err := types.Compare(v, minV); err == nil && c < 0 {
				minV = v
			}
		case plan.WinMax:
			if maxV.IsNull() {
				maxV = v
			} else if c, err := types.Compare(v, maxV); err == nil && c > 0 {
				maxV = v
			}
		}
		return nil
	}

	if ordered {
		// Cumulative frame: rows with equal order keys share the frame end
		// (RANGE BETWEEN UNBOUNDED PRECEDING AND CURRENT ROW).
		i := 0
		for i < n {
			j := i
			for j < n && sameOrderKey(part[i].orderKey, part[j].orderKey) {
				if err := add(j); err != nil {
					return err
				}
				j++
			}
			for k := i; k < j; k++ {
				emit(k)
			}
			i = j
		}
		return nil
	}
	for i := 0; i < n; i++ {
		if err := add(i); err != nil {
			return err
		}
	}
	for i := 0; i < n; i++ {
		emit(i)
	}
	return nil
}

func sameOrderKey(a, b []types.Value) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !types.Equal(a[i], b[i]) {
			return false
		}
	}
	return true
}

// ---------------------------------------------------------------------------
// remaining operators
// ---------------------------------------------------------------------------

func runUnionAll(u *plan.UnionAll, ctx *Context) ([]TRow, error) {
	var out []TRow
	for i, input := range u.Inputs {
		rows, err := Run(input, ctx)
		if err != nil {
			return nil, err
		}
		prefix := "u" + strconv.Itoa(i) + "("
		for _, tr := range rows {
			out = append(out, TRow{ID: prefix + tr.ID + ")", Row: tr.Row})
		}
	}
	return out, nil
}

// UnionBranchID derives the output row ID for branch i of a union.
func UnionBranchID(i int, id string) string {
	return "u" + strconv.Itoa(i) + "(" + id + ")"
}

func runDistinct(d *plan.Distinct, ctx *Context) ([]TRow, error) {
	in, err := Run(d.Input, ctx)
	if err != nil {
		return nil, err
	}
	return DistinctRows(in)
}

// DistinctRows eliminates duplicates from pre-computed rows; reused by IVM.
func DistinctRows(in []TRow) ([]TRow, error) {
	seen := make(map[string]bool, len(in))
	var out []TRow
	for _, tr := range in {
		var buf []byte
		for _, v := range tr.Row {
			buf = normalizeKeyValue(v).EncodeKey(buf)
		}
		key := string(buf)
		if seen[key] {
			continue
		}
		seen[key] = true
		out = append(out, TRow{ID: DistinctRowID(key), Row: tr.Row})
	}
	return out, nil
}

func runFlatten(f *plan.Flatten, ctx *Context) ([]TRow, error) {
	in, err := Run(f.Input, ctx)
	if err != nil {
		return nil, err
	}
	return FlattenRows(f, in, ctx)
}

// FlattenRows unnests pre-computed rows; reused by IVM.
func FlattenRows(f *plan.Flatten, in []TRow, ctx *Context) ([]TRow, error) {
	ev := ctx.eval()
	var out []TRow
	for _, tr := range in {
		v, err := plan.Eval(f.Expr, tr.Row, ev)
		if err != nil {
			return nil, err
		}
		if v.IsNull() {
			continue
		}
		if v.Kind() != types.KindVariant {
			return nil, fmt.Errorf("exec: FLATTEN requires a VARIANT input, got %s", v.Kind())
		}
		arr, ok := v.Variant().([]any)
		if !ok {
			// Non-array variants flatten to a single row with NULL index.
			row := tr.Row.Concat(types.Row{v, types.Null})
			out = append(out, TRow{ID: tr.ID + "#0", Row: row})
			continue
		}
		for i, el := range arr {
			row := tr.Row.Concat(types.Row{types.NewVariant(el), types.NewInt(int64(i))})
			out = append(out, TRow{ID: tr.ID + "#" + strconv.Itoa(i), Row: row})
		}
	}
	return out, nil
}

func runSort(s *plan.Sort, ctx *Context) ([]TRow, error) {
	in, err := Run(s.Input, ctx)
	if err != nil {
		return nil, err
	}
	ev := ctx.eval()
	type keyed struct {
		tr   TRow
		keys []types.Value
	}
	rows := make([]keyed, len(in))
	ticks := 0
	for i, tr := range in {
		if err := ctx.tick(&ticks); err != nil {
			return nil, err
		}
		ks := make([]types.Value, len(s.Items))
		for j, item := range s.Items {
			v, err := plan.Eval(item.Expr, tr.Row, ev)
			if err != nil {
				return nil, err
			}
			ks[j] = v
		}
		rows[i] = keyed{tr: tr, keys: ks}
	}
	sort.SliceStable(rows, func(i, j int) bool {
		for k, item := range s.Items {
			c, err := types.Compare(rows[i].keys[k], rows[j].keys[k])
			if err != nil {
				c = 0
			}
			if c != 0 {
				if item.Desc {
					return c > 0
				}
				return c < 0
			}
		}
		return rows[i].tr.ID < rows[j].tr.ID
	})
	out := make([]TRow, len(rows))
	for i, r := range rows {
		out[i] = r.tr
	}
	return out, nil
}

func runLimit(l *plan.Limit, ctx *Context) ([]TRow, error) {
	in, err := Run(l.Input, ctx)
	if err != nil {
		return nil, err
	}
	if int64(len(in)) > l.N {
		in = in[:l.N]
	}
	return in, nil
}

func runValues(v *plan.Values, ctx *Context) ([]TRow, error) {
	out := make([]TRow, len(v.Rows))
	for i, r := range v.Rows {
		out[i] = TRow{ID: "v:" + strconv.Itoa(i), Row: r}
	}
	return out, nil
}

package validate_test

import (
	"testing"
	"time"

	"dyntables"
	"dyntables/internal/delta"
	"dyntables/internal/types"
	"dyntables/internal/validate"
)

func intRow(v int64) types.Row { return types.Row{types.NewInt(v)} }

func TestWellFormed(t *testing.T) {
	var cs delta.ChangeSet
	cs.AddInsert("a", intRow(1))
	cs.AddDelete("a", intRow(0))
	if err := validate.WellFormed(cs); err != nil {
		t.Errorf("update pair is well-formed: %v", err)
	}
	cs.AddInsert("a", intRow(2))
	if err := validate.WellFormed(cs); err == nil {
		t.Error("duplicate (rowid, INSERT) must be rejected")
	}
}

func TestNoPhantomDeletes(t *testing.T) {
	current := map[string]types.Row{"a": intRow(1)}
	var ok delta.ChangeSet
	ok.AddDelete("a", intRow(1))
	if err := validate.NoPhantomDeletes(ok, current); err != nil {
		t.Errorf("existing delete rejected: %v", err)
	}
	var bad delta.ChangeSet
	bad.AddDelete("ghost", intRow(0))
	if err := validate.NoPhantomDeletes(bad, current); err == nil {
		t.Error("phantom delete must be rejected")
	}
}

// engineWithDT builds a tiny pipeline for the DT-level validations.
func engineWithDT(t *testing.T) *dyntables.Engine {
	t.Helper()
	e := dyntables.New()
	e.MustExec(`CREATE WAREHOUSE wh`)
	e.MustExec(`CREATE TABLE t (a INT)`)
	e.MustExec(`INSERT INTO t VALUES (1), (2)`)
	e.MustExec(`CREATE DYNAMIC TABLE d TARGET_LAG = '1 minute' WAREHOUSE = wh
	            AS SELECT a, a * 2 b FROM t`)
	return e
}

func TestUpstreamVersionExists(t *testing.T) {
	e := engineWithDT(t)
	entry, err := e.Catalog().Get("d")
	if err != nil {
		t.Fatal(err)
	}
	dt, ok := e.Controller().LookupByStorage(entryStorageID(t, e, entry.Name))
	if !ok {
		t.Fatal("controller does not know the DT")
	}
	if err := validate.UpstreamVersionExists(dt, dt.DataTimestamp()); err != nil {
		t.Errorf("version at own data timestamp must exist: %v", err)
	}
	if err := validate.UpstreamVersionExists(dt, dt.DataTimestamp().Add(time.Second)); err == nil {
		t.Error("missing exact version must be reported (§6.1 validation 1)")
	}
}

// entryStorageID digs out the DT's storage ID via Describe + controller.
func entryStorageID(t *testing.T, e *dyntables.Engine, name string) int64 {
	t.Helper()
	dt, err := e.DynamicTableHandle(name)
	if err != nil {
		t.Fatal(err)
	}
	return dt.Storage.ID()
}

func TestDVSAndMonotoneHistory(t *testing.T) {
	e := engineWithDT(t)
	dt, err := e.DynamicTableHandle("d")
	if err != nil {
		t.Fatal(err)
	}
	if err := validate.DVS(e.Controller(), dt); err != nil {
		t.Errorf("DVS after init: %v", err)
	}
	e.MustExec(`INSERT INTO t VALUES (3)`)
	e.AdvanceTime(2 * time.Minute)
	if err := e.RunScheduler(); err != nil {
		t.Fatal(err)
	}
	if err := validate.DVS(e.Controller(), dt); err != nil {
		t.Errorf("DVS after refresh: %v", err)
	}
	if err := validate.MonotoneHistory(dt); err != nil {
		t.Errorf("monotone history: %v", err)
	}
}

func TestLagWithinTarget(t *testing.T) {
	e := engineWithDT(t)
	dt, err := e.DynamicTableHandle("d")
	if err != nil {
		t.Fatal(err)
	}
	e.AdvanceTime(90 * time.Second)
	if err := e.RunScheduler(); err != nil {
		t.Fatal(err)
	}
	if err := validate.LagWithinTarget(dt, e.Now(), time.Minute); err != nil {
		t.Errorf("lag within target: %v", err)
	}
	// Suspend and fall far behind: the check fires.
	e.MustExec(`ALTER DYNAMIC TABLE d SUSPEND`)
	e.AdvanceTime(time.Hour)
	if err := validate.LagWithinTarget(dt, e.Now(), time.Minute); err == nil {
		t.Error("stale DT must violate the lag check")
	}
}

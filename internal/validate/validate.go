// Package validate packages the production validations of §6.1 — the
// checks Snowflake runs on every refresh to catch corruption before it
// reaches customers — plus consistency checks over refresh histories. The
// three core validations:
//
//  1. An upstream DT must have a version for the exact data timestamp of
//     the refresh (otherwise the scheduler violated snapshot isolation).
//  2. A change set never contains more than one row per ($ROW_ID, $ACTION).
//  3. A change set never deletes a row that does not exist.
//
// The package also exposes the delayed-view-semantics oracle used by
// randomized testing: DT contents ≡ defining query as of the data
// timestamp.
package validate

import (
	"fmt"
	"time"

	"dyntables/internal/core"
	"dyntables/internal/delta"
	"dyntables/internal/sql"
	"dyntables/internal/types"
)

// UpstreamVersionExists is validation 1: the upstream DT has a version at
// exactly the given data timestamp.
func UpstreamVersionExists(up *core.DynamicTable, dataTS time.Time) error {
	if _, ok := up.VersionAtDataTS(dataTS); !ok {
		return fmt.Errorf("validate: %s has no version for data timestamp %s (scheduler bug)",
			up.Name, dataTS.UTC().Format(time.RFC3339))
	}
	return nil
}

// WellFormed is validation 2: at most one row per ($ROW_ID, $ACTION).
func WellFormed(cs delta.ChangeSet) error {
	return cs.ValidateWellFormed()
}

// NoPhantomDeletes is validation 3: every deleted row exists in the
// current contents.
func NoPhantomDeletes(cs delta.ChangeSet, current map[string]types.Row) error {
	for _, c := range cs.Changes {
		if c.Action == delta.Delete {
			if _, ok := current[c.RowID]; !ok {
				return fmt.Errorf("validate: change set deletes nonexistent row %s", c.RowID)
			}
		}
	}
	return nil
}

// DVS is the delayed-view-semantics oracle (§6.1): stored contents equal
// the defining query evaluated as of the data timestamp.
func DVS(ctrl *core.Controller, dt *core.DynamicTable) error {
	return ctrl.CheckDVS(dt)
}

// MonotoneHistory checks that successful refreshes carry strictly
// increasing data timestamps — the forward movement delayed view semantics
// requires (§3.1.1).
func MonotoneHistory(dt *core.DynamicTable) error {
	var last time.Time
	for i, rec := range dt.History() {
		switch rec.Action {
		case core.ActionSkip, core.ActionError:
			continue
		}
		if rec.Action == core.ActionNoData && !rec.DataTS.After(last) {
			// Idempotent re-refresh at the same timestamp is permitted.
			continue
		}
		if !last.IsZero() && !rec.DataTS.After(last) {
			return fmt.Errorf("validate: %s refresh %d regressed data timestamp %s -> %s",
				dt.Name, i, last, rec.DataTS)
		}
		last = rec.DataTS
	}
	return nil
}

// LagWithinTarget checks the liveness property the scheduler aims for: at
// measurement time, the DT's lag does not exceed its target lag plus the
// allowed slack (§6.2 frames this as a shared responsibility; slack covers
// refresh duration).
func LagWithinTarget(dt *core.DynamicTable, now time.Time, slack time.Duration) error {
	if dt.Lag.Kind == sql.LagDownstream {
		return nil // no requirement of its own (§3.2)
	}
	lag := dt.CurrentLag(now)
	target := dt.Lag.Duration
	if lag > target+slack {
		return fmt.Errorf("validate: %s lag %v exceeds target %v (+%v slack)", dt.Name, lag, target, slack)
	}
	return nil
}

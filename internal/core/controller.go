package core

import (
	"errors"
	"fmt"
	"math"
	"strconv"
	"sync"
	"time"

	"dyntables/internal/adaptive"
	"dyntables/internal/delta"
	"dyntables/internal/exec"
	"dyntables/internal/hlc"
	"dyntables/internal/ivm"
	"dyntables/internal/plan"
	"dyntables/internal/sql"
	"dyntables/internal/storage"
	"dyntables/internal/trace"
	"dyntables/internal/txn"
	"dyntables/internal/types"
)

// ErrSkipped is returned when a refresh is skipped because a previous
// refresh of the same DT is still running (§3.3.3).
var ErrSkipped = errors.New("core: refresh skipped (previous refresh still running)")

// ErrSuspended is returned when refreshing a suspended DT.
var ErrSuspended = errors.New("core: dynamic table is suspended")

// ErrUpstreamVersionMissing is the first §6.1 production validation: an
// upstream DT has no version for the exact data timestamp of this refresh,
// indicating a scheduler bug; the refresh fails rather than risk a
// snapshot-isolation violation.
var ErrUpstreamVersionMissing = errors.New("core: upstream DT version for exact data timestamp not found")

// Controller executes DT refreshes. It is the engine-side "compiler +
// transaction" path of §5.1: it re-binds the defining query, resolves
// source versions for the refresh interval, chooses the refresh action,
// differentiates the plan when incremental, validates the changes and
// commits them.
//
// Refresh is safe for concurrent callers refreshing *distinct* DTs (the
// parallel refresher runs dependency waves this way): per-DT state sits
// behind each DynamicTable's mutex, the registry behind regMu, storage
// and catalog reads behind their own locks, and commits behind the
// transaction manager's per-table locks. Concurrent refreshes of the
// same DT serialize through the per-DT refresh lock — the second caller
// gets ErrSkipped (§3.3.3, §5.3).
type Controller struct {
	txns     *txn.Manager
	resolver plan.Resolver

	// byStorageID maps a storage table ID to the DT whose contents it
	// holds, so version resolution can use data-timestamp mappings for
	// upstream DTs (§5.3). regMu guards it: sessions register/unregister
	// DTs via DDL while refreshes resolve versions concurrently.
	regMu       sync.RWMutex
	byStorageID map[int64]*DynamicTable

	// depGeneration looks up the current catalog generation of an entry;
	// wired by the engine to catalog lookups.
	depGeneration func(entryID int64) (int64, error)

	// frontierSink, when set, observes every frontier advance (WAL
	// emission for refresh continuity across restarts).
	frontierSink FrontierSink
	// refreshSink, when set, observes every recorded refresh attempt
	// (success, error or skip) — the observability recorder's feed.
	refreshSink RefreshSink

	// HistoryCapacity bounds the per-DT refresh-history ring of DTs this
	// controller builds (0 = core.DefaultHistoryCapacity). Written only
	// while refreshes are excluded (engine DDL lock).
	HistoryCapacity int

	// Hooks for the IVM ablation strategies.
	ExpandOuterJoins    bool
	FullWindowRecompute bool

	// DeltaParallelism bounds concurrent subplan evaluations inside one
	// refresh's differentiation (ivm.Env.Parallelism): join sides, union
	// branches and boundary snapshots evaluate in parallel when > 1.
	// Written only while refreshes are excluded (engine DDL lock); read
	// by every refresh.
	DeltaParallelism int

	// Columnar routes refresh boundary-snapshot evaluations through the
	// columnar execution path (shared per-version batches + vectorized
	// filters/projections). Change sets are identical either way; the
	// differential harness holds the two paths byte-equivalent. Written
	// only while refreshes are excluded (engine DDL lock).
	Columnar bool

	// Adaptive, when set and enabled, chooses the effective refresh mode
	// of REFRESH_MODE=AUTO DTs per refresh from observed change volume
	// (§3.3.2); nil or disabled falls back to the static AUTO
	// resolution. Written once at engine construction; the chooser's own
	// gate handles runtime toggling.
	Adaptive *adaptive.Chooser

	// Tracer, when set, records one root span per refresh with child
	// spans for every pipeline phase (bind, differentiation operators,
	// merge commit). The root span ID lands in RefreshRecord.TraceRoot so
	// refresh history joins against TRACE_SPANS. Nil (or a disabled
	// recorder) costs one nil check per refresh. Written only at engine
	// construction.
	Tracer *trace.Recorder
}

// FrontierUpdate describes one frontier advance: everything a recovered
// engine needs so its next refresh of the DT proceeds incrementally from
// the same point — the pinned source versions, the data-timestamp mapping
// entry, and the dependency generations observed at the successful bind.
type FrontierUpdate struct {
	DataTS            time.Time
	Versions          ivm.VersionMap // storage table ID -> pinned seq
	VersionSeq        int64          // DT storage version holding the contents
	Commit            hlc.Timestamp  // zero for NO_DATA advances
	Deps              map[int64]int64
	SchemaFingerprint string
	Initialized       bool
	// AdaptiveMode and AdaptiveReason carry the adaptive chooser's
	// decision in force at this refresh, so WAL replay restores the last
	// decision even past the latest checkpoint. AdaptiveValid marks
	// records written by engines that know the adaptive state
	// definitively — for those, RefreshAuto means "decision cleared"
	// (evolved plan, plan no longer incrementalizable) and replay must
	// clear too, not skip; without it (legacy records) RefreshAuto
	// carries no information.
	AdaptiveValid  bool
	AdaptiveMode   sql.RefreshMode
	AdaptiveReason string
}

// FrontierSink observes frontier advances. Implementations must not call
// back into the controller.
type FrontierSink interface {
	FrontierAdvanced(dt *DynamicTable, u FrontierUpdate)
}

// SetFrontierSink registers the frontier observer (at most one; nil
// clears).
func (c *Controller) SetFrontierSink(s FrontierSink) {
	c.regMu.Lock()
	defer c.regMu.Unlock()
	c.frontierSink = s
}

func (c *Controller) emitFrontier(dt *DynamicTable, u FrontierUpdate) {
	c.regMu.RLock()
	sink := c.frontierSink
	c.regMu.RUnlock()
	if sink != nil {
		sink.FrontierAdvanced(dt, u)
	}
}

// RefreshSink observes every refresh attempt the controller records in a
// DT's history: successes, errors and skips alike. Implementations must
// not call back into the controller; the observability recorder uses
// this to maintain its queryable per-DT history rings. Refreshes of
// distinct DTs run concurrently, so implementations must be safe for
// concurrent use.
type RefreshSink interface {
	RefreshRecorded(dt *DynamicTable, rec RefreshRecord)
}

// SetRefreshSink registers the refresh observer (at most one; nil
// clears).
func (c *Controller) SetRefreshSink(s RefreshSink) {
	c.regMu.Lock()
	defer c.regMu.Unlock()
	c.refreshSink = s
}

func (c *Controller) emitRefresh(dt *DynamicTable, rec RefreshRecord) {
	c.regMu.RLock()
	sink := c.refreshSink
	c.regMu.RUnlock()
	if sink != nil {
		sink.RefreshRecorded(dt, rec)
	}
}

// RecordSkip records a scheduler-initiated skip (§3.3.3) in the DT's
// history and emits it to the refresh sink; the scheduler routes its
// skip decisions here so skipped ticks are observable alongside executed
// refreshes. One record feeds both surfaces, so Describe and
// INFORMATION_SCHEMA agree about the event.
func (c *Controller) RecordSkip(dt *DynamicTable, dataTS time.Time) {
	mode, reason := dt.ModeDecision()
	rec := RefreshRecord{DataTS: dataTS, Action: ActionSkip, RowsAfter: dt.Storage.RowCount(),
		EffectiveMode: mode, ModeReason: reason}
	dt.record(rec)
	c.emitRefresh(dt, rec)
}

// NewController wires a controller.
func NewController(txns *txn.Manager, resolver plan.Resolver, depGeneration func(int64) (int64, error)) *Controller {
	return &Controller{
		txns:          txns,
		resolver:      resolver,
		byStorageID:   make(map[int64]*DynamicTable),
		depGeneration: depGeneration,
	}
}

// Register makes the controller aware of a DT (after catalog creation).
// The DT also learns the controller's adaptive chooser, so its mode
// reporting can tell whether a sticky adaptive decision is actually in
// force (a disabled chooser falls back to the static resolution).
func (c *Controller) Register(dt *DynamicTable) {
	c.regMu.Lock()
	defer c.regMu.Unlock()
	c.byStorageID[dt.Storage.ID()] = dt
	dt.setChooser(c.Adaptive)
}

// Unregister removes a dropped DT's storage mapping.
func (c *Controller) Unregister(dt *DynamicTable) {
	c.regMu.Lock()
	defer c.regMu.Unlock()
	delete(c.byStorageID, dt.Storage.ID())
}

// FrontierFloors reports, per storage table ID, the minimum version seq
// pinned by any registered DT's refresh frontier. The compaction sweep
// keeps change history at and above these floors so every DT's next
// refresh can still read Changes incrementally instead of falling back
// to REINITIALIZE.
func (c *Controller) FrontierFloors() map[int64]int64 {
	c.regMu.RLock()
	dts := make([]*DynamicTable, 0, len(c.byStorageID))
	for _, dt := range c.byStorageID {
		dts = append(dts, dt)
	}
	c.regMu.RUnlock()
	floors := make(map[int64]int64)
	for _, dt := range dts {
		for id, seq := range dt.Frontier().Versions {
			if cur, ok := floors[id]; !ok || seq < cur {
				floors[id] = seq
			}
		}
	}
	return floors
}

// LookupByStorage resolves the DT owning a storage table, if any.
func (c *Controller) LookupByStorage(id int64) (*DynamicTable, bool) {
	c.regMu.RLock()
	defer c.regMu.RUnlock()
	dt, ok := c.byStorageID[id]
	return dt, ok
}

// Build creates the DT state for a CREATE DYNAMIC TABLE statement: it
// binds the defining query, resolves the effective refresh mode (§3.3.2),
// and allocates the storage table with the query's output schema.
func (c *Controller) Build(stmt *sql.CreateDynamicTableStmt, createdAt hlc.Timestamp) (*DynamicTable, error) {
	bound, err := c.bind(stmt.Text)
	if err != nil {
		return nil, fmt.Errorf("core: invalid defining query for %s: %w", stmt.Name, err)
	}
	mode := stmt.Mode
	incErr := ivm.Incrementalizable(bound.Plan)
	switch mode {
	case sql.RefreshAuto:
		if incErr == nil {
			mode = sql.RefreshIncremental
		} else {
			mode = sql.RefreshFull
		}
	case sql.RefreshIncremental:
		if incErr != nil {
			return nil, fmt.Errorf("core: %s: REFRESH_MODE=INCREMENTAL unsupported: %w", stmt.Name, incErr)
		}
	}
	dt := &DynamicTable{
		Name:            stmt.Name,
		Text:            stmt.Text,
		Lag:             stmt.Lag,
		Warehouse:       stmt.Warehouse,
		DeclaredMode:    stmt.Mode,
		EffectiveMode:   mode,
		Storage:         storage.NewTable(bound.Plan.Schema(), createdAt),
		deps:            bound.Deps,
		versionByDataTS: make(map[int64]int64),
		commitByDataTS:  make(map[int64]hlc.Timestamp),
		historyCap:      c.HistoryCapacity,
	}
	dt.schemaFingerprint = bound.Plan.Schema().String()
	return dt, nil
}

func (c *Controller) bind(text string) (*plan.Bound, error) {
	stmt, err := sql.Parse(text)
	if err != nil {
		return nil, err
	}
	sel, ok := stmt.(*sql.SelectStmt)
	if !ok {
		return nil, fmt.Errorf("defining query is not a SELECT")
	}
	bound, err := plan.NewBinder(c.resolver).BindSelect(sel)
	if err != nil {
		return nil, err
	}
	bound.Plan = plan.Optimize(bound.Plan)
	return bound, nil
}

// hlcUpperBound converts a data timestamp to the inclusive upper bound for
// commit-timestamp resolution: every commit whose wall time is at or
// before the data timestamp is visible.
func hlcUpperBound(ts time.Time) hlc.Timestamp {
	return hlc.Timestamp{WallMicros: ts.UnixMicro(), Logical: math.MaxInt32}
}

// resolveVersions computes the version map for the plan's scans as of a
// data timestamp: base tables resolve by commit time; upstream DTs resolve
// through their data-timestamp mapping, failing with
// ErrUpstreamVersionMissing when no exact entry exists (§6.1 validation 1).
func (c *Controller) resolveVersions(p plan.Node, dataTS time.Time) (ivm.VersionMap, error) {
	vm := ivm.VersionMap{}
	for _, scan := range plan.Scans(p) {
		id := scan.Table.ID()
		if _, done := vm[id]; done {
			continue
		}
		if up, isDT := c.LookupByStorage(id); isDT {
			seq, ok := up.VersionAtDataTS(dataTS)
			if !ok {
				return nil, fmt.Errorf("%w: %s has no version for %s",
					ErrUpstreamVersionMissing, up.Name, dataTS.UTC().Format(time.RFC3339Nano))
			}
			vm[id] = seq
			continue
		}
		v, err := scan.Table.VersionAsOf(hlcUpperBound(dataTS))
		if err != nil {
			return nil, err
		}
		vm[id] = v.Seq
	}
	return vm, nil
}

// Refresh runs one refresh of the DT at the given data timestamp. The
// returned record describes the action taken; an error return always
// corresponds to a record with ActionError or ActionSkip.
func (c *Controller) Refresh(dt *DynamicTable, dataTS time.Time) (RefreshRecord, error) {
	if dt.State() == StateSuspended {
		return RefreshRecord{DataTS: dataTS, Action: ActionSkip, Err: ErrSuspended}, ErrSuspended
	}
	root := c.Tracer.StartRoot("refresh", trace.A("dt", dt.Name))
	defer func() { c.Tracer.FinishRoot(root) }()
	if !dt.tryBeginRefresh() {
		mode, reason := dt.ModeDecision()
		rec := RefreshRecord{DataTS: dataTS, Action: ActionSkip, Err: ErrSkipped,
			RowsAfter: dt.Storage.RowCount(), EffectiveMode: mode, ModeReason: reason,
			TraceRoot: root.RootID()}
		root.SetAttr("action", rec.Action.String())
		dt.record(rec)
		c.emitRefresh(dt, rec)
		return rec, ErrSkipped
	}
	defer dt.endRefresh()

	rec, err := c.refreshLocked(dt, dataTS, root)
	rec.TraceRoot = root.RootID()
	if err != nil {
		rec.Action = ActionError
		rec.Err = err
		root.SetAttr("action", rec.Action.String())
		dt.record(rec)
		c.emitRefresh(dt, rec)
		dt.mu.Lock()
		dt.errorCount++
		suspend := dt.errorCount >= MaxConsecutiveErrors
		if suspend {
			dt.state = StateSuspended
		}
		dt.mu.Unlock()
		return rec, err
	}
	root.SetAttr("action", rec.Action.String())
	root.SetAttr("scan_rows", strconv.FormatInt(rec.SourceRowsScanned, 10))
	root.SetAttr("scan_bytes", strconv.FormatInt(rec.ScanBytes, 10))
	dt.mu.Lock()
	dt.errorCount = 0
	dt.mu.Unlock()
	dt.record(rec)
	c.emitRefresh(dt, rec)
	return rec, nil
}

// spanHook adapts a trace span to ivm.Env.Span, keeping ivm free of a
// trace dependency. A nil root yields a nil hook, so the delta
// evaluator's per-operator instrumentation disappears entirely when
// tracing is off.
func spanHook(root *trace.Span) func(string) func() {
	if root == nil {
		return nil
	}
	return func(name string) func() {
		return root.Child(name).End
	}
}

// refreshLocked performs the action decision and execution of §5.4.
// root (nil when tracing is disabled) carries the refresh's trace; the
// phases below record child spans under it.
func (c *Controller) refreshLocked(dt *DynamicTable, dataTS time.Time, root *trace.Span) (RefreshRecord, error) {
	rec := RefreshRecord{DataTS: dataTS}
	// Seed the mode fields with the decision currently in force; the
	// adaptive decision point below refines them once the interval's
	// cost signals are known.
	rec.EffectiveMode, rec.ModeReason = dt.ModeDecision()

	if !dataTS.After(dt.DataTimestamp()) && dt.Initialized() {
		// Data timestamps move strictly forward; re-refreshing at the same
		// timestamp is a NO_DATA no-op for idempotence.
		rec.Action = ActionNoData
		rec.RowsAfter = dt.Storage.RowCount()
		return rec, nil
	}

	// Re-bind the defining query (identifiers may resolve differently
	// after upstream DDL, §5.4).
	bindSpan := root.Child("bind")
	bound, err := c.bind(dt.Text)
	bindSpan.End()
	if err != nil {
		return rec, err
	}

	// Query evolution: a replaced dependency or changed output schema
	// forces reinitialization (§5.4, conservative policy).
	evolved, err := c.queryEvolved(dt, bound)
	if err != nil {
		return rec, err
	}

	vmTo, err := c.resolveVersions(bound.Plan, dataTS)
	if err != nil {
		return rec, err
	}

	counters := &exec.Counters{}
	env := &ivm.Env{
		Now:                 dataTS,
		Counters:            counters,
		Parallelism:         c.DeltaParallelism,
		ExpandOuterJoins:    c.ExpandOuterJoins,
		FullWindowRecompute: c.FullWindowRecompute,
		Columnar:            c.Columnar,
		Span:                spanHook(root),
	}

	if !dt.Initialized() || evolved {
		if evolved {
			// The plan changed structurally (replaced dependency or new
			// output schema): any sticky adaptive decision was made for a
			// different plan, so adaptation restarts from a cold start —
			// and this record must not carry the just-invalidated
			// decision's reason. Re-seed before deriving the action, so
			// action and effective_mode agree.
			dt.ClearAdaptiveDecision()
			rec.EffectiveMode, rec.ModeReason = dt.ModeDecision()
		}
		action := ActionInitialize
		if dt.Initialized() {
			if rec.EffectiveMode == sql.RefreshIncremental {
				action = ActionReinitialize
			} else {
				action = ActionFull
			}
		}
		rec.Action = action
		return c.fullCompute(dt, bound, dataTS, vmTo, env, rec)
	}

	// NO_DATA when no source changed over the interval (§3.3.2).
	frontier := dt.Frontier()
	changed := false
	for _, scan := range plan.Scans(bound.Plan) {
		id := scan.Table.ID()
		from, ok := frontier.Versions[id]
		if !ok {
			changed = true // new dependency appeared without generation bump
			break
		}
		if scan.Table.ChangedSince(from, vmTo[id]) {
			changed = true
			break
		}
	}
	if !changed {
		rec.Action = ActionNoData
		rec.RowsAfter = dt.Storage.RowCount()
		c.advanceFrontier(dt, bound, dataTS, vmTo, int64(dt.Storage.VersionCount()), hlc.Zero)
		return rec, nil
	}

	// Per-refresh mode decision (§3.3.2): pinned modes resolve statically;
	// incrementalizable AUTO DTs consult the adaptive chooser, comparing
	// the interval's change volume against the full-recompute estimate
	// smoothed over recent refresh history.
	mode, reason, changeVol, fullEst := c.chooseMode(dt, bound, frontier, vmTo)
	rec.EffectiveMode, rec.ModeReason = mode, reason
	rec.SourceRowsChanged, rec.FullScanEstimate = changeVol, fullEst

	if mode == sql.RefreshFull {
		rec.Action = ActionFull
		return c.fullCompute(dt, bound, dataTS, vmTo, env, rec)
	}

	// INCREMENTAL: differentiate over the frontier interval.
	cs, err := ivm.Delta(bound.Plan, ivm.Interval{From: frontier.Versions, To: vmTo}, env)
	if errors.Is(err, ivm.ErrSourceOverwritten) {
		// An upstream replace/overwrite invalidates stored results (§3.3.2).
		rec.Action = ActionReinitialize
		return c.fullCompute(dt, bound, dataTS, vmTo, env, rec)
	}
	if err != nil {
		return rec, err
	}
	rec.Action = ActionIncremental
	rec.SourceRowsScanned = counters.ScanRows
	rec.ScanBytes = counters.ScanBytes

	// §6.1 validations 2 and 3: at most one row per ($ROW_ID, $ACTION),
	// and never delete a row that does not exist.
	if err := cs.ValidateWellFormed(); err != nil {
		return rec, fmt.Errorf("core: %s: refresh produced ill-formed changes: %w", dt.Name, err)
	}
	current, err := dt.Storage.Rows(int64(dt.Storage.VersionCount()))
	if err != nil {
		return rec, err
	}
	for _, ch := range cs.Changes {
		if ch.Action == delta.Delete {
			if _, ok := current[ch.RowID]; !ok {
				return rec, fmt.Errorf("core: %s: refresh deletes nonexistent row %s", dt.Name, ch.RowID)
			}
		}
	}

	ins, del := cs.Counts()
	rec.Inserted, rec.Deleted = ins, del

	// Merge: apply the changes in a transaction (§5.3).
	mergeSpan := root.Child("merge")
	tx := c.txns.Begin()
	if err := tx.Write(dt.Storage, cs); err != nil {
		tx.Abort()
		mergeSpan.End()
		return rec, err
	}
	commit, err := tx.Commit()
	mergeSpan.End()
	if err != nil {
		return rec, err
	}
	rec.RowsAfter = dt.Storage.RowCount()
	c.advanceFrontier(dt, bound, dataTS, vmTo, int64(dt.Storage.VersionCount()), commit)
	return rec, nil
}

// chooseMode resolves the effective refresh mode for one refresh and
// returns it with its reason and the interval's cost signals. Pinned
// modes and non-incrementalizable AUTO plans resolve statically; for
// incrementalizable AUTO plans with the adaptive chooser enabled, the
// decision compares the change volume recorded in the source version
// chains against the full-recompute estimate, smoothed over the DT's
// recent refresh history with hysteresis so the mode does not flap at
// the crossover.
func (c *Controller) chooseMode(dt *DynamicTable, bound *plan.Bound, frontier Frontier, vmTo ivm.VersionMap) (sql.RefreshMode, string, int64, int64) {
	// Cost signals are computed for every refresh — a walk over
	// version-chain lengths, no row materialization — so the refresh
	// history carries them even for pinned DTs.
	var changeVol, baseRows int64
	seen := map[int64]bool{}
	for _, scan := range plan.Scans(bound.Plan) {
		id := scan.Table.ID()
		if seen[id] {
			continue
		}
		seen[id] = true
		changeVol += scan.Table.ChangeVolume(frontier.Versions[id], vmTo[id])
		if v, err := scan.Table.VersionBySeq(vmTo[id]); err == nil {
			baseRows += int64(v.RowCount)
		}
	}
	fullEst := baseRows + int64(dt.Storage.RowCount())

	if dt.DeclaredMode != sql.RefreshAuto {
		mode, reason := StaticResolution(dt.DeclaredMode, dt.DeclaredMode)
		return mode, reason, changeVol, fullEst
	}
	if err := ivm.Incrementalizable(bound.Plan); err != nil {
		// Upstream DDL can make an AUTO plan non-incrementalizable after
		// Build: record the re-resolution (and drop any sticky adaptive
		// decision — it was made for a structurally different plan) so
		// every reporting surface agrees with what this refresh runs.
		reason := fmt.Sprintf("AUTO: %v", err)
		dt.ClearAdaptiveDecision()
		dt.setStaticResolution(sql.RefreshFull, reason)
		return sql.RefreshFull, reason, changeVol, fullEst
	}
	if c.Adaptive == nil || !c.Adaptive.Enabled() {
		mode, reason := StaticResolution(sql.RefreshAuto, sql.RefreshIncremental)
		dt.setStaticResolution(mode, reason)
		return mode, reason, changeVol, fullEst
	}

	cfg := c.Adaptive.Config()
	dec := c.Adaptive.Decide(dt.adaptivePrior(), dt.recentObservations(cfg.Window, cfg.AmpMemory),
		adaptive.Observation{ChangeRows: changeVol, FullRows: fullEst})
	mode := sql.RefreshIncremental
	if dec.Mode == adaptive.ModeFull {
		mode = sql.RefreshFull
	}
	dt.setAdaptiveDecision(mode, dec.Reason)
	return mode, dec.Reason, changeVol, fullEst
}

// StaticMode re-resolves a DT's static mode for its declared mode: the
// declared pin itself, or — for AUTO — INCREMENTAL exactly when the
// defining query is incrementalizable. ALTER ... SET REFRESH_MODE uses
// it to validate and install a new declaration.
func (c *Controller) StaticMode(dt *DynamicTable, declared sql.RefreshMode) (sql.RefreshMode, error) {
	bound, err := c.bind(dt.Text)
	if err != nil {
		return declared, err
	}
	incErr := ivm.Incrementalizable(bound.Plan)
	switch declared {
	case sql.RefreshIncremental:
		if incErr != nil {
			return declared, fmt.Errorf("core: %s: REFRESH_MODE=INCREMENTAL unsupported: %w", dt.Name, incErr)
		}
		return sql.RefreshIncremental, nil
	case sql.RefreshFull:
		return sql.RefreshFull, nil
	default:
		if incErr == nil {
			return sql.RefreshIncremental, nil
		}
		return sql.RefreshFull, nil
	}
}

// fullCompute executes the defining query as of the data timestamp and
// overwrites the DT's contents (FULL / INITIALIZE / REINITIALIZE actions).
func (c *Controller) fullCompute(dt *DynamicTable, bound *plan.Bound, dataTS time.Time, vmTo ivm.VersionMap, env *ivm.Env, rec RefreshRecord) (RefreshRecord, error) {
	rows, err := ivm.EvalAsOf(bound.Plan, vmTo, env)
	if err != nil {
		return rec, err
	}
	contents := make(map[string]types.Row, len(rows))
	for _, tr := range rows {
		contents[tr.ID] = tr.Row
	}
	if env.Counters != nil {
		rec.SourceRowsScanned = env.Counters.ScanRows
		rec.ScanBytes = env.Counters.ScanBytes
	}

	// Schema evolution: adopt the (possibly changed) output schema.
	dt.Storage.SetSchema(bound.Plan.Schema())

	tx := c.txns.Begin()
	if err := tx.Overwrite(dt.Storage, contents); err != nil {
		tx.Abort()
		return rec, err
	}
	commit, err := tx.Commit()
	if err != nil {
		return rec, err
	}
	rec.Inserted = len(contents)
	rec.RowsAfter = len(contents)

	dt.mu.Lock()
	dt.initialized = true
	dt.deps = bound.Deps
	dt.schemaFingerprint = bound.Plan.Schema().String()
	dt.mu.Unlock()
	c.advanceFrontier(dt, bound, dataTS, vmTo, int64(dt.Storage.VersionCount()), commit)
	return rec, nil
}

// advanceFrontier installs the new frontier and records the data-timestamp
// mapping (§5.3: "when a refresh commits, we add a new entry to the
// mapping"). The advance is also emitted to the frontier sink so the
// durability layer can replay it after a crash.
func (c *Controller) advanceFrontier(dt *DynamicTable, bound *plan.Bound, dataTS time.Time, vm ivm.VersionMap, versionSeq int64, commit hlc.Timestamp) {
	dt.mu.Lock()
	dt.frontier = Frontier{DataTS: dataTS, Versions: vm.Clone()}
	dt.deps = bound.Deps
	dt.versionByDataTS[dataTS.UnixMicro()] = versionSeq
	if !commit.IsZero() {
		dt.commitByDataTS[dataTS.UnixMicro()] = commit
	}
	u := FrontierUpdate{
		DataTS:            dataTS,
		Versions:          vm.Clone(),
		VersionSeq:        versionSeq,
		Commit:            commit,
		Deps:              cloneDeps(bound.Deps),
		SchemaFingerprint: dt.schemaFingerprint,
		Initialized:       dt.initialized,
		AdaptiveValid:     true,
		AdaptiveMode:      dt.adaptiveMode,
		AdaptiveReason:    dt.adaptiveReason,
	}
	dt.mu.Unlock()
	c.emitFrontier(dt, u)
}

func cloneDeps(deps map[int64]int64) map[int64]int64 {
	out := make(map[int64]int64, len(deps))
	for k, v := range deps {
		out[k] = v
	}
	return out
}

// queryEvolved reports whether the DT must reinitialize because a
// dependency was replaced (generation bump) or the output schema changed
// (§5.4). Dropped dependencies surface as bind errors instead.
func (c *Controller) queryEvolved(dt *DynamicTable, bound *plan.Bound) (bool, error) {
	dt.mu.Lock()
	oldDeps := dt.deps
	oldSchema := dt.schemaFingerprint
	dt.mu.Unlock()

	if bound.Plan.Schema().String() != oldSchema {
		return true, nil
	}
	for id := range bound.Deps {
		gen, err := c.depGeneration(id)
		if err != nil {
			return false, err
		}
		old, known := oldDeps[id]
		if !known {
			// A dependency the DT did not previously read (e.g. a view
			// now resolving to a different table): reinitialize.
			return true, nil
		}
		if gen != old {
			return true, nil
		}
	}
	// A dependency disappearing from the bound set also evolves the query.
	for id := range oldDeps {
		if _, still := bound.Deps[id]; !still {
			return true, nil
		}
	}
	return false, nil
}

// ChooseInitTimestamp implements §3.1.2: an initialization reuses the most
// recent data timestamp among upstream DTs that is within the target lag;
// otherwise it uses the creation time. This avoids the quadratic refresh
// blow-up when users create DT chains in dependency order.
func (c *Controller) ChooseInitTimestamp(dt *DynamicTable, now time.Time) (time.Time, error) {
	bound, err := c.bind(dt.Text)
	if err != nil {
		return time.Time{}, err
	}
	lag := dt.Lag.Duration
	if dt.Lag.Kind == sql.LagDownstream {
		// DOWNSTREAM DTs accept any upstream timestamp.
		lag = time.Duration(math.MaxInt64)
	}
	var best time.Time
	for _, scan := range plan.Scans(bound.Plan) {
		up, isDT := c.LookupByStorage(scan.Table.ID())
		if !isDT {
			continue
		}
		ts := up.DataTimestamp()
		if ts.IsZero() {
			continue
		}
		if now.Sub(ts) <= lag && ts.After(best) {
			best = ts
		}
	}
	if best.IsZero() {
		return now, nil
	}
	return best, nil
}

// CheckDVS verifies delayed view semantics (§3.1.1 / §6.1): the DT's
// stored contents must equal the defining query evaluated as of the data
// timestamp, using the frontier's pinned versions. This is the strong
// assertion the paper's randomized workload testing checks for hundreds of
// thousands of generated DTs.
func (c *Controller) CheckDVS(dt *DynamicTable) error {
	if !dt.Initialized() {
		return fmt.Errorf("core: %s is not initialized", dt.Name)
	}
	bound, err := c.bind(dt.Text)
	if err != nil {
		return err
	}
	frontier := dt.Frontier()
	env := &ivm.Env{Now: frontier.DataTS}
	expected, err := ivm.EvalAsOf(bound.Plan, frontier.Versions, env)
	if err != nil {
		return err
	}
	stored, err := dt.Storage.Rows(int64(dt.Storage.VersionCount()))
	if err != nil {
		return err
	}
	if len(expected) != len(stored) {
		return fmt.Errorf("core: DVS violation in %s: stored %d rows, query yields %d",
			dt.Name, len(stored), len(expected))
	}
	for _, tr := range expected {
		got, ok := stored[tr.ID]
		if !ok {
			return fmt.Errorf("core: DVS violation in %s: row %s missing from stored contents", dt.Name, tr.ID)
		}
		if !got.Equal(tr.Row) {
			return fmt.Errorf("core: DVS violation in %s: row %s stored as %v, query yields %v",
				dt.Name, tr.ID, got, tr.Row)
		}
	}
	return nil
}

// Upstreams returns the DTs that the defining query reads (directly).
func (c *Controller) Upstreams(dt *DynamicTable) ([]*DynamicTable, error) {
	bound, err := c.bind(dt.Text)
	if err != nil {
		return nil, err
	}
	var out []*DynamicTable
	seen := map[int64]bool{}
	for _, scan := range plan.Scans(bound.Plan) {
		if up, isDT := c.LookupByStorage(scan.Table.ID()); isDT && !seen[up.Storage.ID()] {
			seen[up.Storage.ID()] = true
			out = append(out, up)
		}
	}
	return out, nil
}

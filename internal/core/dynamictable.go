// Package core implements the paper's primary contribution: Dynamic
// Tables. A dynamic table owns a stored result, a frontier tracking the
// versions of every consumed source (§5.3), and a refresh controller that
// chooses and executes the NO_DATA / FULL / INCREMENTAL / REINITIALIZE
// refresh actions (§3.3.2, §5.4), upholding delayed view semantics: after
// every successful refresh, the stored contents equal the defining query
// evaluated as of the DT's data timestamp (§3.1.1).
package core

import (
	"fmt"
	"sync"
	"time"

	"dyntables/internal/adaptive"
	"dyntables/internal/catalog"
	"dyntables/internal/hlc"
	"dyntables/internal/ivm"
	"dyntables/internal/ring"
	"dyntables/internal/sql"
	"dyntables/internal/storage"
)

// State is a DT's lifecycle state.
type State uint8

// The DT states.
const (
	// StateActive means the DT refreshes on schedule.
	StateActive State = iota
	// StateSuspended means refreshes are paused (manually or after
	// consecutive errors, §3.3.3).
	StateSuspended
)

// String names the state.
func (s State) String() string {
	if s == StateSuspended {
		return "SUSPENDED"
	}
	return "ACTIVE"
}

// MaxConsecutiveErrors is the auto-suspension threshold (§3.3.3).
const MaxConsecutiveErrors = 5

// DefaultHistoryCapacity bounds a DT's in-memory refresh history ring:
// the most recent DefaultHistoryCapacity records are kept, so
// long-running schedulers do not grow per-DT state without bound.
const DefaultHistoryCapacity = 1024

// Frontier is the map underlying a DT's data timestamp (§5.3): the version
// of each source table the DT has consumed, plus the refresh timestamp.
type Frontier struct {
	// DataTS is the data timestamp: the DT's contents equal the defining
	// query evaluated as of this time.
	DataTS time.Time
	// Versions pins the consumed version per source storage-table ID.
	Versions ivm.VersionMap
}

// Clone copies the frontier.
func (f Frontier) Clone() Frontier {
	return Frontier{DataTS: f.DataTS, Versions: f.Versions.Clone()}
}

// RefreshAction is the action a refresh took (§3.3.2).
type RefreshAction uint8

// The refresh actions.
const (
	ActionNoData RefreshAction = iota
	ActionFull
	ActionIncremental
	ActionReinitialize
	ActionInitialize
	ActionSkip
	ActionError
)

// String names the action.
func (a RefreshAction) String() string {
	switch a {
	case ActionNoData:
		return "NO_DATA"
	case ActionFull:
		return "FULL"
	case ActionIncremental:
		return "INCREMENTAL"
	case ActionReinitialize:
		return "REINITIALIZE"
	case ActionInitialize:
		return "INITIALIZE"
	case ActionSkip:
		return "SKIP"
	case ActionError:
		return "ERROR"
	default:
		return fmt.Sprintf("ACTION(%d)", uint8(a))
	}
}

// RefreshRecord describes one refresh attempt; the scheduler, the
// adaptive refresh-mode chooser and the experiment harness consume
// these.
type RefreshRecord struct {
	DataTS   time.Time
	Action   RefreshAction
	Inserted int
	Deleted  int
	// RowsAfter is the DT's row count after the refresh.
	RowsAfter int
	// SourceRowsScanned approximates the work done reading sources.
	SourceRowsScanned int64
	// ScanBytes estimates the bytes of source rows the refresh read
	// (executor scan-side accounting). In-memory only: checkpoints do
	// not persist it.
	ScanBytes int64
	// EffectiveMode is the refresh mode in force for this refresh (FULL
	// or INCREMENTAL) and ModeReason explains why it was chosen: the
	// declared mode, the static AUTO resolution, or the adaptive
	// chooser's per-refresh decision (§3.3.2).
	EffectiveMode sql.RefreshMode
	ModeReason    string
	// SourceRowsChanged counts source rows changed over the refresh
	// interval (the adaptive chooser's incremental-cost signal) and
	// FullScanEstimate the full-recompute cost estimate (base
	// cardinality plus result size). Both are zero for refreshes that
	// reached no mode decision (skips, initializations, bind errors).
	SourceRowsChanged int64
	FullScanEstimate  int64
	// TraceRoot is the refresh's trace-root span ID (0 when tracing is
	// disabled), joinable against INFORMATION_SCHEMA.TRACE_SPANS.
	TraceRoot int64
	Err       error
}

// DynamicTable is the engine-side state of one DT. The catalog stores it
// as an Entry payload. All mutating access goes through the Controller,
// which serializes refreshes per DT with the refresh lock (§5.3: "Each
// Dynamic Table is locked when a refresh operation begins").
type DynamicTable struct {
	Name string
	// EntryID is the catalog identity; set at registration.
	EntryID int64
	// Text is the defining query's SQL text; re-parsed and re-bound at
	// every refresh (§5.4).
	Text string
	// Lag is the TARGET_LAG setting.
	Lag sql.TargetLag
	// Warehouse names the virtual warehouse refreshes run in.
	Warehouse string
	// DeclaredMode is the user's REFRESH_MODE; EffectiveMode is the
	// resolved FULL or INCREMENTAL (§3.3.2).
	DeclaredMode  sql.RefreshMode
	EffectiveMode sql.RefreshMode
	// Storage holds the DT's materialized contents.
	Storage *storage.Table

	mu sync.Mutex
	// refreshing guards against concurrent refreshes of the same DT.
	refreshing bool

	state       State
	initialized bool
	errorCount  int
	frontier    Frontier
	// deps records the catalog generation of each dependency at the last
	// successful bind; a generation bump signals replacement → REINITIALIZE
	// (§5.4).
	deps map[int64]int64
	// schemaFingerprint detects output schema changes from upstream DDL.
	schemaFingerprint string

	// adaptiveMode is the adaptive chooser's sticky per-DT decision for
	// REFRESH_MODE=AUTO DTs (RefreshAuto = no decision yet, i.e. the
	// static resolution applies); adaptiveReason explains the last
	// decision. Both survive recovery via checkpoints and frontier WAL
	// records. chooser (set at controller registration) gates whether
	// the sticky decision is actually in force: while the chooser is
	// disabled, refreshes run the static resolution, so reporting must
	// fall back to it too.
	adaptiveMode   sql.RefreshMode
	adaptiveReason string
	chooser        *adaptive.Chooser
	// staticMode/staticReason cache the latest refresh-time *static*
	// re-resolution of AUTO (RefreshAuto = none): upstream DDL can
	// change a plan's incrementalizability after Build, and reporting
	// must agree with what refreshes actually run. Not persisted — it is
	// re-derived by the first refresh after recovery.
	staticMode   sql.RefreshMode
	staticReason string

	// versionByDataTS maps a data timestamp (µs) to the storage version
	// sequence holding the corresponding contents, and commitByDataTS to
	// the commit timestamp — the mapping §5.3 describes for resolving
	// upstream DT versions by refresh timestamp.
	versionByDataTS map[int64]int64
	commitByDataTS  map[int64]hlc.Timestamp

	// history is a bounded ring of refresh records (capacity historyCap;
	// 0 = DefaultHistoryCapacity).
	history    ring.Ring[RefreshRecord]
	historyCap int
}

// ObjectKind implements catalog.Object.
func (dt *DynamicTable) ObjectKind() catalog.ObjectKind { return catalog.KindDynamicTable }

// State returns the lifecycle state.
func (dt *DynamicTable) State() State {
	dt.mu.Lock()
	defer dt.mu.Unlock()
	return dt.state
}

// Initialized reports whether the DT has been initialized; querying an
// uninitialized DT is an error (§3.1).
func (dt *DynamicTable) Initialized() bool {
	dt.mu.Lock()
	defer dt.mu.Unlock()
	return dt.initialized
}

// Suspend pauses refreshes.
func (dt *DynamicTable) Suspend() {
	dt.mu.Lock()
	defer dt.mu.Unlock()
	dt.state = StateSuspended
}

// Resume reactivates the DT and clears the error counter; after the root
// cause is addressed the DT resumes from where it left off (§3.3.3).
func (dt *DynamicTable) Resume() {
	dt.mu.Lock()
	defer dt.mu.Unlock()
	dt.state = StateActive
	dt.errorCount = 0
}

// ErrorCount returns the consecutive-failure counter.
func (dt *DynamicTable) ErrorCount() int {
	dt.mu.Lock()
	defer dt.mu.Unlock()
	return dt.errorCount
}

// Frontier returns a copy of the current frontier.
func (dt *DynamicTable) Frontier() Frontier {
	dt.mu.Lock()
	defer dt.mu.Unlock()
	return dt.frontier.Clone()
}

// DataTimestamp returns the DT's data timestamp (§3.1.1).
func (dt *DynamicTable) DataTimestamp() time.Time {
	dt.mu.Lock()
	defer dt.mu.Unlock()
	return dt.frontier.DataTS
}

// CurrentLag returns now minus the data timestamp (§3.2).
func (dt *DynamicTable) CurrentLag(now time.Time) time.Duration {
	return now.Sub(dt.DataTimestamp())
}

// ModeDecision returns the DT's current effective refresh mode and the
// reason it is in force: the adaptive chooser's last decision when one
// exists, otherwise the declared mode or the static AUTO resolution.
func (dt *DynamicTable) ModeDecision() (sql.RefreshMode, string) {
	dt.mu.Lock()
	defer dt.mu.Unlock()
	return dt.modeDecisionLocked()
}

func (dt *DynamicTable) modeDecisionLocked() (sql.RefreshMode, string) {
	// Precedence: a declared pin always wins; then the sticky adaptive
	// decision — but only while the chooser is enabled (a disabled
	// chooser means refreshes run the static resolution, and reporting
	// must agree with what actually runs; the decision itself is kept so
	// re-enabling resumes from it); then the latest refresh-time static
	// re-resolution; finally the build-time resolution.
	if dt.DeclaredMode != sql.RefreshAuto {
		return StaticResolution(dt.DeclaredMode, dt.EffectiveMode)
	}
	chooserOn := dt.chooser == nil || dt.chooser.Enabled()
	if dt.adaptiveMode != sql.RefreshAuto && chooserOn {
		return dt.adaptiveMode, dt.adaptiveReason
	}
	if dt.staticMode != sql.RefreshAuto {
		return dt.staticMode, dt.staticReason
	}
	return StaticResolution(sql.RefreshAuto, dt.EffectiveMode)
}

// StaticResolution is the single source of truth mapping a declared
// refresh mode (and, for AUTO, the static resolution) to the effective
// mode and its reason string. Refresh execution (Controller.chooseMode)
// and reporting (ModeDecision, EXPLAIN, INFORMATION_SCHEMA) both
// resolve through it, so the two surfaces cannot drift.
func StaticResolution(declared, autoResolved sql.RefreshMode) (sql.RefreshMode, string) {
	switch declared {
	case sql.RefreshFull:
		return sql.RefreshFull, "declared FULL"
	case sql.RefreshIncremental:
		return sql.RefreshIncremental, "declared INCREMENTAL"
	}
	if autoResolved == sql.RefreshIncremental {
		return sql.RefreshIncremental, "AUTO: defining query is incrementalizable"
	}
	return sql.RefreshFull, "AUTO: defining query is not incrementalizable"
}

// CurrentMode returns the effective refresh mode currently in force
// (ModeDecision without the reason).
func (dt *DynamicTable) CurrentMode() sql.RefreshMode {
	mode, _ := dt.ModeDecision()
	return mode
}

// maxObservationScan bounds how many history records one adaptive
// decision may inspect: a raised HISTORY_CAPACITY (100k+) must not turn
// the refresh-time decision into an O(capacity) walk under dt.mu. At
// the default capacity (1024) the bound never binds.
const maxObservationScan = 4096

// recentObservations extracts the adaptive chooser's cost signals from
// the refresh-history ring, oldest first. Records that reached no mode
// decision (skips, initializations, errors before version resolution)
// carry no estimate and are excluded; executed incremental refreshes
// also carry their measured work so the chooser can calibrate its
// amplification factor. The ring is walked newest-first and the walk
// stops as soon as `window` observations and `ampMemory` incremental
// observations are collected — the chooser consumes no more — so the
// per-refresh cost is O(window + ampMemory) in the common case. When
// incremental measurements are sparse (long FULL periods, NO_DATA
// stretches), the walk continues but never past maxObservationScan
// records; beyond that the chooser degrades gracefully to a smaller
// sample (and the default amplification).
func (dt *DynamicTable) recentObservations(window, ampMemory int) []adaptive.Observation {
	dt.mu.Lock()
	defer dt.mu.Unlock()
	var rev []adaptive.Observation
	incN := 0
	start := dt.history.Len() - 1
	floor := 0
	if start+1 > maxObservationScan {
		floor = start + 1 - maxObservationScan
	}
	for i := start; i >= floor; i-- {
		r := dt.history.At(i)
		if r.FullScanEstimate <= 0 || r.Err != nil {
			continue
		}
		o := adaptive.Observation{
			ChangeRows: r.SourceRowsChanged,
			FullRows:   r.FullScanEstimate,
		}
		if r.Action == ActionIncremental {
			o.Incremental = true
			o.ActualWork = r.SourceRowsScanned + int64(r.Inserted+r.Deleted)
			incN++
		}
		rev = append(rev, o)
		if len(rev) >= window && incN >= ampMemory {
			break
		}
	}
	for l, r := 0, len(rev)-1; l < r; l, r = l+1, r-1 {
		rev[l], rev[r] = rev[r], rev[l]
	}
	return rev
}

// adaptivePrior maps the sticky adaptive decision into the chooser's
// mode space (ModeUnset when no decision has been made yet).
func (dt *DynamicTable) adaptivePrior() adaptive.Mode {
	dt.mu.Lock()
	defer dt.mu.Unlock()
	switch dt.adaptiveMode {
	case sql.RefreshIncremental:
		return adaptive.ModeIncremental
	case sql.RefreshFull:
		return adaptive.ModeFull
	default:
		return adaptive.ModeUnset
	}
}

// setChooser records the controller's adaptive chooser for mode
// reporting; called at registration.
func (dt *DynamicTable) setChooser(c *adaptive.Chooser) {
	dt.mu.Lock()
	defer dt.mu.Unlock()
	dt.chooser = c
}

// setAdaptiveDecision installs the chooser's per-refresh decision,
// superseding any cached static re-resolution.
func (dt *DynamicTable) setAdaptiveDecision(mode sql.RefreshMode, reason string) {
	dt.mu.Lock()
	defer dt.mu.Unlock()
	dt.adaptiveMode = mode
	dt.adaptiveReason = reason
	dt.staticMode, dt.staticReason = sql.RefreshAuto, ""
}

// setStaticResolution caches a refresh-time static resolution of AUTO
// (non-incrementalizable plan, or chooser disabled), so reporting
// tracks what the refresh actually ran even after upstream DDL changed
// the plan's incrementalizability.
func (dt *DynamicTable) setStaticResolution(mode sql.RefreshMode, reason string) {
	dt.mu.Lock()
	defer dt.mu.Unlock()
	dt.staticMode = mode
	dt.staticReason = reason
}

// ClearAdaptiveDecision drops the sticky adaptive decision and any
// cached static re-resolution, returning the DT to its declared/static
// mode resolution (used when a DT's declared mode is re-pinned via
// ALTER ... SET REFRESH_MODE).
func (dt *DynamicTable) ClearAdaptiveDecision() {
	dt.mu.Lock()
	defer dt.mu.Unlock()
	dt.adaptiveMode = sql.RefreshAuto
	dt.adaptiveReason = ""
	dt.staticMode, dt.staticReason = sql.RefreshAuto, ""
}

// VersionAtDataTS resolves the storage version holding the contents for
// an exact data timestamp. The refresh of a downstream DT fails when the
// exact version is missing — the first §6.1 production validation.
func (dt *DynamicTable) VersionAtDataTS(ts time.Time) (int64, bool) {
	dt.mu.Lock()
	defer dt.mu.Unlock()
	seq, ok := dt.versionByDataTS[ts.UnixMicro()]
	return seq, ok
}

// History returns a copy of the retained refresh records, oldest first.
// The ring keeps at most HistoryCapacity records.
func (dt *DynamicTable) History() []RefreshRecord {
	dt.mu.Lock()
	defer dt.mu.Unlock()
	return dt.history.Snapshot()
}

// HistoryCapacity returns the history ring's bound.
func (dt *DynamicTable) HistoryCapacity() int {
	dt.mu.Lock()
	defer dt.mu.Unlock()
	return dt.historyCapLocked()
}

func (dt *DynamicTable) historyCapLocked() int {
	if dt.historyCap > 0 {
		return dt.historyCap
	}
	return DefaultHistoryCapacity
}

// SetHistoryCapacity rebounds the history ring, evicting the oldest
// records that no longer fit. n <= 0 restores DefaultHistoryCapacity.
func (dt *DynamicTable) SetHistoryCapacity(n int) {
	dt.mu.Lock()
	defer dt.mu.Unlock()
	if n <= 0 {
		n = DefaultHistoryCapacity
	}
	dt.historyCap = n
	dt.history.Resize(n)
}

// installHistoryLocked replaces the ring's contents, keeping the newest
// records within capacity; callers hold dt.mu.
func (dt *DynamicTable) installHistoryLocked(recs []RefreshRecord) {
	dt.history = ring.Ring[RefreshRecord]{}
	dt.history.Resize(dt.historyCapLocked())
	for _, r := range recs {
		dt.history.Push(r)
	}
}

// LastRecord returns the most recent refresh record.
func (dt *DynamicTable) LastRecord() (RefreshRecord, bool) {
	dt.mu.Lock()
	defer dt.mu.Unlock()
	if dt.history.Len() == 0 {
		return RefreshRecord{}, false
	}
	return *dt.history.At(dt.history.Len() - 1), true
}

// CloneAt returns a zero-copy clone of the DT (§3.4): the storage version
// chain is shared up to the clone point, and the frontier and
// data-timestamp mappings are copied so the clone avoids reinitialization.
// The clone is unregistered and unnamed; the engine assigns both.
func (dt *DynamicTable) CloneAt(at hlc.Timestamp) (*DynamicTable, error) {
	dt.mu.Lock()
	defer dt.mu.Unlock()
	st, err := dt.Storage.Clone(at)
	if err != nil {
		return nil, err
	}
	clone := &DynamicTable{
		Name:              dt.Name,
		Text:              dt.Text,
		Lag:               dt.Lag,
		Warehouse:         dt.Warehouse,
		DeclaredMode:      dt.DeclaredMode,
		EffectiveMode:     dt.EffectiveMode,
		Storage:           st,
		state:             dt.state,
		initialized:       dt.initialized,
		frontier:          dt.frontier.Clone(),
		deps:              make(map[int64]int64, len(dt.deps)),
		versionByDataTS:   make(map[int64]int64, len(dt.versionByDataTS)),
		commitByDataTS:    make(map[int64]hlc.Timestamp, len(dt.commitByDataTS)),
		schemaFingerprint: dt.schemaFingerprint,
		historyCap:        dt.historyCap,
		adaptiveMode:      dt.adaptiveMode,
		adaptiveReason:    dt.adaptiveReason,
		chooser:           dt.chooser,
	}
	for k, v := range dt.deps {
		clone.deps[k] = v
	}
	maxSeq := int64(st.VersionCount())
	for k, v := range dt.versionByDataTS {
		if v <= maxSeq {
			clone.versionByDataTS[k] = v
		}
	}
	for k, v := range dt.commitByDataTS {
		clone.commitByDataTS[k] = v
	}
	return clone, nil
}

// ---------------------------------------------------------------------------
// checkpoint export / recovery restore
// ---------------------------------------------------------------------------

// RestoreDynamicTable reconstructs a DT from its durable definition during
// recovery: the defining SQL plus the resolved modes, with a restored (or
// fresh) storage table. The refresh-continuity state (frontier, mappings,
// history) is installed separately via RestoreState or replayed through
// ApplyFrontierUpdate. No binding happens here — recovery must not depend
// on catalog population order.
func RestoreDynamicTable(name, text string, lag sql.TargetLag, wh string,
	declared, effective sql.RefreshMode, st *storage.Table) *DynamicTable {
	return &DynamicTable{
		Name:            name,
		Text:            text,
		Lag:             lag,
		Warehouse:       wh,
		DeclaredMode:    declared,
		EffectiveMode:   effective,
		Storage:         st,
		versionByDataTS: make(map[int64]int64),
		commitByDataTS:  make(map[int64]hlc.Timestamp),
	}
}

// DTCheckpoint is the serializable refresh-continuity state of a DT.
type DTCheckpoint struct {
	Suspended         bool
	Initialized       bool
	ErrorCount        int
	Frontier          Frontier
	Deps              map[int64]int64
	SchemaFingerprint string
	VersionByDataTS   map[int64]int64
	CommitByDataTS    map[int64]hlc.Timestamp
	History           []RefreshRecord
	// AdaptiveMode and AdaptiveReason checkpoint the adaptive chooser's
	// sticky decision so a recovered engine resumes in the same
	// effective mode (RefreshAuto = no decision).
	AdaptiveMode   sql.RefreshMode
	AdaptiveReason string
}

// Checkpoint exports the DT's refresh-continuity state.
func (dt *DynamicTable) Checkpoint() DTCheckpoint {
	dt.mu.Lock()
	defer dt.mu.Unlock()
	cp := DTCheckpoint{
		Suspended:         dt.state == StateSuspended,
		Initialized:       dt.initialized,
		ErrorCount:        dt.errorCount,
		Frontier:          dt.frontier.Clone(),
		Deps:              cloneDeps(dt.deps),
		SchemaFingerprint: dt.schemaFingerprint,
		VersionByDataTS:   make(map[int64]int64, len(dt.versionByDataTS)),
		CommitByDataTS:    make(map[int64]hlc.Timestamp, len(dt.commitByDataTS)),
		History:           dt.history.Snapshot(),
		AdaptiveMode:      dt.adaptiveMode,
		AdaptiveReason:    dt.adaptiveReason,
	}
	for k, v := range dt.versionByDataTS {
		cp.VersionByDataTS[k] = v
	}
	for k, v := range dt.commitByDataTS {
		cp.CommitByDataTS[k] = v
	}
	return cp
}

// RestoreState installs checkpointed refresh-continuity state.
func (dt *DynamicTable) RestoreState(cp DTCheckpoint) {
	dt.mu.Lock()
	defer dt.mu.Unlock()
	dt.state = StateActive
	if cp.Suspended {
		dt.state = StateSuspended
	}
	dt.initialized = cp.Initialized
	dt.errorCount = cp.ErrorCount
	dt.frontier = cp.Frontier.Clone()
	dt.deps = cloneDeps(cp.Deps)
	dt.schemaFingerprint = cp.SchemaFingerprint
	dt.versionByDataTS = make(map[int64]int64, len(cp.VersionByDataTS))
	for k, v := range cp.VersionByDataTS {
		dt.versionByDataTS[k] = v
	}
	dt.commitByDataTS = make(map[int64]hlc.Timestamp, len(cp.CommitByDataTS))
	for k, v := range cp.CommitByDataTS {
		dt.commitByDataTS[k] = v
	}
	dt.adaptiveMode = cp.AdaptiveMode
	dt.adaptiveReason = cp.AdaptiveReason
	dt.installHistoryLocked(cp.History)
}

// ApplyFrontierUpdate replays one WAL frontier record: the same state
// transition advanceFrontier performed on the live engine, minus the
// storage commit (replayed separately as a commit record).
func (dt *DynamicTable) ApplyFrontierUpdate(u FrontierUpdate) {
	dt.mu.Lock()
	defer dt.mu.Unlock()
	dt.frontier = Frontier{DataTS: u.DataTS, Versions: u.Versions.Clone()}
	dt.deps = cloneDeps(u.Deps)
	dt.schemaFingerprint = u.SchemaFingerprint
	dt.versionByDataTS[u.DataTS.UnixMicro()] = u.VersionSeq
	if !u.Commit.IsZero() {
		dt.commitByDataTS[u.DataTS.UnixMicro()] = u.Commit
	}
	if u.Initialized {
		dt.initialized = true
	}
	if u.AdaptiveValid {
		// The record carries the full adaptive state: RefreshAuto means
		// the decision was cleared (evolved plan), and replay must clear
		// too so recovery matches the pre-crash live engine.
		dt.adaptiveMode = u.AdaptiveMode
		dt.adaptiveReason = u.AdaptiveReason
	} else if u.AdaptiveMode != sql.RefreshAuto {
		// Legacy records only carry a decision when one was in force.
		dt.adaptiveMode = u.AdaptiveMode
		dt.adaptiveReason = u.AdaptiveReason
	}
	dt.errorCount = 0
}

// record appends a refresh record to the bounded ring (callers hold no
// locks).
func (dt *DynamicTable) record(r RefreshRecord) {
	dt.mu.Lock()
	defer dt.mu.Unlock()
	// Resize is a no-op while the configured capacity is unchanged.
	dt.history.Resize(dt.historyCapLocked())
	dt.history.Push(r)
}

// tryBeginRefresh acquires the per-DT refresh lock without blocking; a
// false return means a refresh is already running and the caller should
// skip (§3.3.3: no concurrent refreshes of the same DT).
func (dt *DynamicTable) tryBeginRefresh() bool {
	dt.mu.Lock()
	defer dt.mu.Unlock()
	if dt.refreshing {
		return false
	}
	dt.refreshing = true
	return true
}

func (dt *DynamicTable) endRefresh() {
	dt.mu.Lock()
	defer dt.mu.Unlock()
	dt.refreshing = false
}

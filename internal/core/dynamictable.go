// Package core implements the paper's primary contribution: Dynamic
// Tables. A dynamic table owns a stored result, a frontier tracking the
// versions of every consumed source (§5.3), and a refresh controller that
// chooses and executes the NO_DATA / FULL / INCREMENTAL / REINITIALIZE
// refresh actions (§3.3.2, §5.4), upholding delayed view semantics: after
// every successful refresh, the stored contents equal the defining query
// evaluated as of the DT's data timestamp (§3.1.1).
package core

import (
	"fmt"
	"sync"
	"time"

	"dyntables/internal/catalog"
	"dyntables/internal/hlc"
	"dyntables/internal/ivm"
	"dyntables/internal/ring"
	"dyntables/internal/sql"
	"dyntables/internal/storage"
)

// State is a DT's lifecycle state.
type State uint8

// The DT states.
const (
	// StateActive means the DT refreshes on schedule.
	StateActive State = iota
	// StateSuspended means refreshes are paused (manually or after
	// consecutive errors, §3.3.3).
	StateSuspended
)

// String names the state.
func (s State) String() string {
	if s == StateSuspended {
		return "SUSPENDED"
	}
	return "ACTIVE"
}

// MaxConsecutiveErrors is the auto-suspension threshold (§3.3.3).
const MaxConsecutiveErrors = 5

// DefaultHistoryCapacity bounds a DT's in-memory refresh history ring:
// the most recent DefaultHistoryCapacity records are kept, so
// long-running schedulers do not grow per-DT state without bound.
const DefaultHistoryCapacity = 1024

// Frontier is the map underlying a DT's data timestamp (§5.3): the version
// of each source table the DT has consumed, plus the refresh timestamp.
type Frontier struct {
	// DataTS is the data timestamp: the DT's contents equal the defining
	// query evaluated as of this time.
	DataTS time.Time
	// Versions pins the consumed version per source storage-table ID.
	Versions ivm.VersionMap
}

// Clone copies the frontier.
func (f Frontier) Clone() Frontier {
	return Frontier{DataTS: f.DataTS, Versions: f.Versions.Clone()}
}

// RefreshAction is the action a refresh took (§3.3.2).
type RefreshAction uint8

// The refresh actions.
const (
	ActionNoData RefreshAction = iota
	ActionFull
	ActionIncremental
	ActionReinitialize
	ActionInitialize
	ActionSkip
	ActionError
)

// String names the action.
func (a RefreshAction) String() string {
	switch a {
	case ActionNoData:
		return "NO_DATA"
	case ActionFull:
		return "FULL"
	case ActionIncremental:
		return "INCREMENTAL"
	case ActionReinitialize:
		return "REINITIALIZE"
	case ActionInitialize:
		return "INITIALIZE"
	case ActionSkip:
		return "SKIP"
	case ActionError:
		return "ERROR"
	default:
		return fmt.Sprintf("ACTION(%d)", uint8(a))
	}
}

// RefreshRecord describes one refresh attempt; the scheduler and the
// experiment harness consume these.
type RefreshRecord struct {
	DataTS   time.Time
	Action   RefreshAction
	Inserted int
	Deleted  int
	// RowsAfter is the DT's row count after the refresh.
	RowsAfter int
	// SourceRowsScanned approximates the work done reading sources.
	SourceRowsScanned int64
	Err               error
}

// DynamicTable is the engine-side state of one DT. The catalog stores it
// as an Entry payload. All mutating access goes through the Controller,
// which serializes refreshes per DT with the refresh lock (§5.3: "Each
// Dynamic Table is locked when a refresh operation begins").
type DynamicTable struct {
	Name string
	// EntryID is the catalog identity; set at registration.
	EntryID int64
	// Text is the defining query's SQL text; re-parsed and re-bound at
	// every refresh (§5.4).
	Text string
	// Lag is the TARGET_LAG setting.
	Lag sql.TargetLag
	// Warehouse names the virtual warehouse refreshes run in.
	Warehouse string
	// DeclaredMode is the user's REFRESH_MODE; EffectiveMode is the
	// resolved FULL or INCREMENTAL (§3.3.2).
	DeclaredMode  sql.RefreshMode
	EffectiveMode sql.RefreshMode
	// Storage holds the DT's materialized contents.
	Storage *storage.Table

	mu sync.Mutex
	// refreshing guards against concurrent refreshes of the same DT.
	refreshing bool

	state       State
	initialized bool
	errorCount  int
	frontier    Frontier
	// deps records the catalog generation of each dependency at the last
	// successful bind; a generation bump signals replacement → REINITIALIZE
	// (§5.4).
	deps map[int64]int64
	// schemaFingerprint detects output schema changes from upstream DDL.
	schemaFingerprint string

	// versionByDataTS maps a data timestamp (µs) to the storage version
	// sequence holding the corresponding contents, and commitByDataTS to
	// the commit timestamp — the mapping §5.3 describes for resolving
	// upstream DT versions by refresh timestamp.
	versionByDataTS map[int64]int64
	commitByDataTS  map[int64]hlc.Timestamp

	// history is a bounded ring of refresh records (capacity historyCap;
	// 0 = DefaultHistoryCapacity).
	history    ring.Ring[RefreshRecord]
	historyCap int
}

// ObjectKind implements catalog.Object.
func (dt *DynamicTable) ObjectKind() catalog.ObjectKind { return catalog.KindDynamicTable }

// State returns the lifecycle state.
func (dt *DynamicTable) State() State {
	dt.mu.Lock()
	defer dt.mu.Unlock()
	return dt.state
}

// Initialized reports whether the DT has been initialized; querying an
// uninitialized DT is an error (§3.1).
func (dt *DynamicTable) Initialized() bool {
	dt.mu.Lock()
	defer dt.mu.Unlock()
	return dt.initialized
}

// Suspend pauses refreshes.
func (dt *DynamicTable) Suspend() {
	dt.mu.Lock()
	defer dt.mu.Unlock()
	dt.state = StateSuspended
}

// Resume reactivates the DT and clears the error counter; after the root
// cause is addressed the DT resumes from where it left off (§3.3.3).
func (dt *DynamicTable) Resume() {
	dt.mu.Lock()
	defer dt.mu.Unlock()
	dt.state = StateActive
	dt.errorCount = 0
}

// ErrorCount returns the consecutive-failure counter.
func (dt *DynamicTable) ErrorCount() int {
	dt.mu.Lock()
	defer dt.mu.Unlock()
	return dt.errorCount
}

// Frontier returns a copy of the current frontier.
func (dt *DynamicTable) Frontier() Frontier {
	dt.mu.Lock()
	defer dt.mu.Unlock()
	return dt.frontier.Clone()
}

// DataTimestamp returns the DT's data timestamp (§3.1.1).
func (dt *DynamicTable) DataTimestamp() time.Time {
	dt.mu.Lock()
	defer dt.mu.Unlock()
	return dt.frontier.DataTS
}

// CurrentLag returns now minus the data timestamp (§3.2).
func (dt *DynamicTable) CurrentLag(now time.Time) time.Duration {
	return now.Sub(dt.DataTimestamp())
}

// VersionAtDataTS resolves the storage version holding the contents for
// an exact data timestamp. The refresh of a downstream DT fails when the
// exact version is missing — the first §6.1 production validation.
func (dt *DynamicTable) VersionAtDataTS(ts time.Time) (int64, bool) {
	dt.mu.Lock()
	defer dt.mu.Unlock()
	seq, ok := dt.versionByDataTS[ts.UnixMicro()]
	return seq, ok
}

// History returns a copy of the retained refresh records, oldest first.
// The ring keeps at most HistoryCapacity records.
func (dt *DynamicTable) History() []RefreshRecord {
	dt.mu.Lock()
	defer dt.mu.Unlock()
	return dt.history.Snapshot()
}

// HistoryCapacity returns the history ring's bound.
func (dt *DynamicTable) HistoryCapacity() int {
	dt.mu.Lock()
	defer dt.mu.Unlock()
	return dt.historyCapLocked()
}

func (dt *DynamicTable) historyCapLocked() int {
	if dt.historyCap > 0 {
		return dt.historyCap
	}
	return DefaultHistoryCapacity
}

// SetHistoryCapacity rebounds the history ring, evicting the oldest
// records that no longer fit. n <= 0 restores DefaultHistoryCapacity.
func (dt *DynamicTable) SetHistoryCapacity(n int) {
	dt.mu.Lock()
	defer dt.mu.Unlock()
	if n <= 0 {
		n = DefaultHistoryCapacity
	}
	dt.historyCap = n
	dt.history.Resize(n)
}

// installHistoryLocked replaces the ring's contents, keeping the newest
// records within capacity; callers hold dt.mu.
func (dt *DynamicTable) installHistoryLocked(recs []RefreshRecord) {
	dt.history = ring.Ring[RefreshRecord]{}
	dt.history.Resize(dt.historyCapLocked())
	for _, r := range recs {
		dt.history.Push(r)
	}
}

// LastRecord returns the most recent refresh record.
func (dt *DynamicTable) LastRecord() (RefreshRecord, bool) {
	dt.mu.Lock()
	defer dt.mu.Unlock()
	if dt.history.Len() == 0 {
		return RefreshRecord{}, false
	}
	return *dt.history.At(dt.history.Len() - 1), true
}

// CloneAt returns a zero-copy clone of the DT (§3.4): the storage version
// chain is shared up to the clone point, and the frontier and
// data-timestamp mappings are copied so the clone avoids reinitialization.
// The clone is unregistered and unnamed; the engine assigns both.
func (dt *DynamicTable) CloneAt(at hlc.Timestamp) (*DynamicTable, error) {
	dt.mu.Lock()
	defer dt.mu.Unlock()
	st, err := dt.Storage.Clone(at)
	if err != nil {
		return nil, err
	}
	clone := &DynamicTable{
		Name:              dt.Name,
		Text:              dt.Text,
		Lag:               dt.Lag,
		Warehouse:         dt.Warehouse,
		DeclaredMode:      dt.DeclaredMode,
		EffectiveMode:     dt.EffectiveMode,
		Storage:           st,
		state:             dt.state,
		initialized:       dt.initialized,
		frontier:          dt.frontier.Clone(),
		deps:              make(map[int64]int64, len(dt.deps)),
		versionByDataTS:   make(map[int64]int64, len(dt.versionByDataTS)),
		commitByDataTS:    make(map[int64]hlc.Timestamp, len(dt.commitByDataTS)),
		schemaFingerprint: dt.schemaFingerprint,
		historyCap:        dt.historyCap,
	}
	for k, v := range dt.deps {
		clone.deps[k] = v
	}
	maxSeq := int64(st.VersionCount())
	for k, v := range dt.versionByDataTS {
		if v <= maxSeq {
			clone.versionByDataTS[k] = v
		}
	}
	for k, v := range dt.commitByDataTS {
		clone.commitByDataTS[k] = v
	}
	return clone, nil
}

// ---------------------------------------------------------------------------
// checkpoint export / recovery restore
// ---------------------------------------------------------------------------

// RestoreDynamicTable reconstructs a DT from its durable definition during
// recovery: the defining SQL plus the resolved modes, with a restored (or
// fresh) storage table. The refresh-continuity state (frontier, mappings,
// history) is installed separately via RestoreState or replayed through
// ApplyFrontierUpdate. No binding happens here — recovery must not depend
// on catalog population order.
func RestoreDynamicTable(name, text string, lag sql.TargetLag, wh string,
	declared, effective sql.RefreshMode, st *storage.Table) *DynamicTable {
	return &DynamicTable{
		Name:            name,
		Text:            text,
		Lag:             lag,
		Warehouse:       wh,
		DeclaredMode:    declared,
		EffectiveMode:   effective,
		Storage:         st,
		versionByDataTS: make(map[int64]int64),
		commitByDataTS:  make(map[int64]hlc.Timestamp),
	}
}

// DTCheckpoint is the serializable refresh-continuity state of a DT.
type DTCheckpoint struct {
	Suspended         bool
	Initialized       bool
	ErrorCount        int
	Frontier          Frontier
	Deps              map[int64]int64
	SchemaFingerprint string
	VersionByDataTS   map[int64]int64
	CommitByDataTS    map[int64]hlc.Timestamp
	History           []RefreshRecord
}

// Checkpoint exports the DT's refresh-continuity state.
func (dt *DynamicTable) Checkpoint() DTCheckpoint {
	dt.mu.Lock()
	defer dt.mu.Unlock()
	cp := DTCheckpoint{
		Suspended:         dt.state == StateSuspended,
		Initialized:       dt.initialized,
		ErrorCount:        dt.errorCount,
		Frontier:          dt.frontier.Clone(),
		Deps:              cloneDeps(dt.deps),
		SchemaFingerprint: dt.schemaFingerprint,
		VersionByDataTS:   make(map[int64]int64, len(dt.versionByDataTS)),
		CommitByDataTS:    make(map[int64]hlc.Timestamp, len(dt.commitByDataTS)),
		History:           dt.history.Snapshot(),
	}
	for k, v := range dt.versionByDataTS {
		cp.VersionByDataTS[k] = v
	}
	for k, v := range dt.commitByDataTS {
		cp.CommitByDataTS[k] = v
	}
	return cp
}

// RestoreState installs checkpointed refresh-continuity state.
func (dt *DynamicTable) RestoreState(cp DTCheckpoint) {
	dt.mu.Lock()
	defer dt.mu.Unlock()
	dt.state = StateActive
	if cp.Suspended {
		dt.state = StateSuspended
	}
	dt.initialized = cp.Initialized
	dt.errorCount = cp.ErrorCount
	dt.frontier = cp.Frontier.Clone()
	dt.deps = cloneDeps(cp.Deps)
	dt.schemaFingerprint = cp.SchemaFingerprint
	dt.versionByDataTS = make(map[int64]int64, len(cp.VersionByDataTS))
	for k, v := range cp.VersionByDataTS {
		dt.versionByDataTS[k] = v
	}
	dt.commitByDataTS = make(map[int64]hlc.Timestamp, len(cp.CommitByDataTS))
	for k, v := range cp.CommitByDataTS {
		dt.commitByDataTS[k] = v
	}
	dt.installHistoryLocked(cp.History)
}

// ApplyFrontierUpdate replays one WAL frontier record: the same state
// transition advanceFrontier performed on the live engine, minus the
// storage commit (replayed separately as a commit record).
func (dt *DynamicTable) ApplyFrontierUpdate(u FrontierUpdate) {
	dt.mu.Lock()
	defer dt.mu.Unlock()
	dt.frontier = Frontier{DataTS: u.DataTS, Versions: u.Versions.Clone()}
	dt.deps = cloneDeps(u.Deps)
	dt.schemaFingerprint = u.SchemaFingerprint
	dt.versionByDataTS[u.DataTS.UnixMicro()] = u.VersionSeq
	if !u.Commit.IsZero() {
		dt.commitByDataTS[u.DataTS.UnixMicro()] = u.Commit
	}
	if u.Initialized {
		dt.initialized = true
	}
	dt.errorCount = 0
}

// record appends a refresh record to the bounded ring (callers hold no
// locks).
func (dt *DynamicTable) record(r RefreshRecord) {
	dt.mu.Lock()
	defer dt.mu.Unlock()
	// Resize is a no-op while the configured capacity is unchanged.
	dt.history.Resize(dt.historyCapLocked())
	dt.history.Push(r)
}

// tryBeginRefresh acquires the per-DT refresh lock without blocking; a
// false return means a refresh is already running and the caller should
// skip (§3.3.3: no concurrent refreshes of the same DT).
func (dt *DynamicTable) tryBeginRefresh() bool {
	dt.mu.Lock()
	defer dt.mu.Unlock()
	if dt.refreshing {
		return false
	}
	dt.refreshing = true
	return true
}

func (dt *DynamicTable) endRefresh() {
	dt.mu.Lock()
	defer dt.mu.Unlock()
	dt.refreshing = false
}

package core_test

import (
	"errors"
	"sync"
	"testing"
	"time"

	"dyntables"
	"dyntables/internal/core"
	"dyntables/internal/sql"
)

func newEngine(t *testing.T) *dyntables.Engine {
	t.Helper()
	e := dyntables.New()
	e.MustExec(`CREATE WAREHOUSE wh`)
	e.MustExec(`CREATE TABLE src (a INT, b INT)`)
	e.MustExec(`INSERT INTO src VALUES (1, 1), (2, 1), (3, 2)`)
	return e
}

func TestRefreshActionsSequence(t *testing.T) {
	e := newEngine(t)
	e.MustExec(`CREATE DYNAMIC TABLE d TARGET_LAG = '1 minute' WAREHOUSE = wh
	            AS SELECT b, count(*) c FROM src GROUP BY b`)
	dt, err := e.DynamicTableHandle("d")
	if err != nil {
		t.Fatal(err)
	}

	// 1. Creation produced an INITIALIZE.
	hist := dt.History()
	if len(hist) != 1 || hist[0].Action != core.ActionInitialize {
		t.Fatalf("history after create: %+v", hist)
	}

	// 2. Manual refresh with no changes: NO_DATA.
	e.AdvanceTime(time.Minute)
	if err := e.ManualRefresh("d"); err != nil {
		t.Fatal(err)
	}
	if rec, _ := dt.LastRecord(); rec.Action != core.ActionNoData {
		t.Errorf("expected NO_DATA, got %s", rec.Action)
	}

	// 3. Change + manual refresh: INCREMENTAL.
	e.MustExec(`INSERT INTO src VALUES (4, 2)`)
	e.AdvanceTime(time.Minute)
	if err := e.ManualRefresh("d"); err != nil {
		t.Fatal(err)
	}
	if rec, _ := dt.LastRecord(); rec.Action != core.ActionIncremental {
		t.Errorf("expected INCREMENTAL, got %s", rec.Action)
	}

	// 4. Overwrite the source: REINITIALIZE.
	e.MustExec(`INSERT OVERWRITE INTO src VALUES (9, 9)`)
	e.AdvanceTime(time.Minute)
	if err := e.ManualRefresh("d"); err != nil {
		t.Fatal(err)
	}
	if rec, _ := dt.LastRecord(); rec.Action != core.ActionReinitialize {
		t.Errorf("expected REINITIALIZE after INSERT OVERWRITE, got %s", rec.Action)
	}
	if err := e.CheckDVS("d"); err != nil {
		t.Errorf("DVS: %v", err)
	}
}

func TestRefreshIdempotentAtSameTimestamp(t *testing.T) {
	e := newEngine(t)
	e.MustExec(`CREATE DYNAMIC TABLE d TARGET_LAG = '1 minute' WAREHOUSE = wh
	            AS SELECT a FROM src`)
	dt, _ := e.DynamicTableHandle("d")
	ts := dt.DataTimestamp()
	rec, err := e.Controller().Refresh(dt, ts)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Action != core.ActionNoData {
		t.Errorf("re-refresh at same timestamp should be NO_DATA, got %s", rec.Action)
	}
}

func TestFrontierMappingGrows(t *testing.T) {
	e := newEngine(t)
	e.MustExec(`CREATE DYNAMIC TABLE d TARGET_LAG = '1 minute' WAREHOUSE = wh
	            AS SELECT a FROM src`)
	dt, _ := e.DynamicTableHandle("d")

	ts1 := dt.DataTimestamp()
	if _, ok := dt.VersionAtDataTS(ts1); !ok {
		t.Fatal("mapping missing for initialization timestamp")
	}
	// NO_DATA refresh at a later timestamp maps to the same version.
	seq1, _ := dt.VersionAtDataTS(ts1)
	e.AdvanceTime(time.Minute)
	if err := e.ManualRefresh("d"); err != nil {
		t.Fatal(err)
	}
	ts2 := dt.DataTimestamp()
	seq2, ok := dt.VersionAtDataTS(ts2)
	if !ok {
		t.Fatal("mapping missing after NO_DATA")
	}
	if seq1 != seq2 {
		t.Errorf("NO_DATA must map to the existing version: %d vs %d", seq1, seq2)
	}
}

func TestSuspendBlocksRefresh(t *testing.T) {
	e := newEngine(t)
	e.MustExec(`CREATE DYNAMIC TABLE d TARGET_LAG = '1 minute' WAREHOUSE = wh
	            AS SELECT a FROM src`)
	dt, _ := e.DynamicTableHandle("d")
	dt.Suspend()
	e.AdvanceTime(time.Minute)
	_, err := e.Controller().Refresh(dt, e.Now())
	if !errors.Is(err, core.ErrSuspended) {
		t.Errorf("want ErrSuspended, got %v", err)
	}
	dt.Resume()
	if _, err := e.Controller().Refresh(dt, e.Now()); err != nil {
		t.Errorf("refresh after resume: %v", err)
	}
}

func TestBuildResolvesEffectiveMode(t *testing.T) {
	e := newEngine(t)
	cases := []struct {
		query string
		want  sql.RefreshMode
	}{
		{`SELECT a FROM src`, sql.RefreshIncremental},
		{`SELECT b, count(*) c FROM src GROUP BY b`, sql.RefreshIncremental},
		{`SELECT count(*) c FROM src`, sql.RefreshFull},           // scalar aggregate
		{`SELECT a FROM src ORDER BY a LIMIT 3`, sql.RefreshFull}, // order/limit
	}
	for i, tc := range cases {
		name := string(rune('p' + i))
		e.MustExec(`CREATE DYNAMIC TABLE ` + name + ` TARGET_LAG = '1 minute' WAREHOUSE = wh AS ` + tc.query)
		dt, _ := e.DynamicTableHandle(name)
		if dt.EffectiveMode != tc.want {
			t.Errorf("%s: mode %s, want %s", tc.query, dt.EffectiveMode, tc.want)
		}
	}
}

func TestChooseInitTimestampWithinLag(t *testing.T) {
	e := newEngine(t)
	e.MustExec(`CREATE DYNAMIC TABLE up TARGET_LAG = '10 minutes' WAREHOUSE = wh AS SELECT a FROM src`)
	up, _ := e.DynamicTableHandle("up")
	upTS := up.DataTimestamp()

	// Within the target lag: reuse the upstream timestamp.
	e.AdvanceTime(5 * time.Minute)
	e.MustExec(`CREATE DYNAMIC TABLE down1 TARGET_LAG = '10 minutes' WAREHOUSE = wh AS SELECT a FROM up`)
	d1, _ := e.DynamicTableHandle("down1")
	if !d1.DataTimestamp().Equal(upTS) {
		t.Errorf("init should reuse upstream ts: %v vs %v", d1.DataTimestamp(), upTS)
	}

	// Outside the target lag: use creation time (and refresh upstream).
	e.AdvanceTime(20 * time.Minute)
	e.MustExec(`CREATE DYNAMIC TABLE down2 TARGET_LAG = '10 minutes' WAREHOUSE = wh AS SELECT a FROM up`)
	d2, _ := e.DynamicTableHandle("down2")
	if d2.DataTimestamp().Equal(upTS) {
		t.Error("init must not reuse a timestamp older than the target lag")
	}
	if !d2.DataTimestamp().Equal(up.DataTimestamp()) {
		t.Errorf("upstream must be refreshed to the init timestamp: %v vs %v",
			d2.DataTimestamp(), up.DataTimestamp())
	}
}

func TestUpstreamVersionMissingValidation(t *testing.T) {
	e := newEngine(t)
	e.MustExec(`CREATE DYNAMIC TABLE up TARGET_LAG = '1 minute' WAREHOUSE = wh AS SELECT a FROM src`)
	e.MustExec(`CREATE DYNAMIC TABLE down TARGET_LAG = '1 minute' WAREHOUSE = wh AS SELECT a FROM up`)
	down, _ := e.DynamicTableHandle("down")
	// Refreshing `down` at a timestamp `up` never refreshed at must fail
	// with the §6.1 validation error.
	e.AdvanceTime(time.Minute)
	_, err := e.Controller().Refresh(down, e.Now())
	if !errors.Is(err, core.ErrUpstreamVersionMissing) {
		t.Errorf("want ErrUpstreamVersionMissing, got %v", err)
	}
}

func TestSchemaChangeTriggersReinitialize(t *testing.T) {
	e := newEngine(t)
	e.MustExec(`CREATE TABLE wide (a INT, b INT, c INT)`)
	e.MustExec(`INSERT INTO wide VALUES (1, 2, 3)`)
	e.MustExec(`CREATE DYNAMIC TABLE d TARGET_LAG = '1 minute' WAREHOUSE = wh
	            AS SELECT * FROM wide`)
	// Replace upstream with a different shape: SELECT * now yields
	// different columns → reinitialize with the new schema (§5.4).
	e.MustExec(`CREATE OR REPLACE TABLE wide (a INT, z TEXT)`)
	e.MustExec(`INSERT INTO wide VALUES (7, 'x')`)
	e.AdvanceTime(2 * time.Minute)
	if err := e.ManualRefresh("d"); err != nil {
		t.Fatal(err)
	}
	res, err := e.Query(`SELECT z FROM d`)
	if err != nil {
		t.Fatalf("new column not queryable: %v", err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].Str() != "x" {
		t.Errorf("contents after schema evolution: %+v", res.Rows)
	}
}

func TestRefreshRecordCounts(t *testing.T) {
	e := newEngine(t)
	e.MustExec(`CREATE DYNAMIC TABLE d TARGET_LAG = '1 minute' WAREHOUSE = wh
	            AS SELECT a FROM src WHERE a > 1`)
	e.MustExec(`INSERT INTO src VALUES (10, 5)`)
	e.MustExec(`DELETE FROM src WHERE a = 2`)
	e.AdvanceTime(time.Minute)
	if err := e.ManualRefresh("d"); err != nil {
		t.Fatal(err)
	}
	dt, _ := e.DynamicTableHandle("d")
	rec, _ := dt.LastRecord()
	if rec.Inserted != 1 || rec.Deleted != 1 {
		t.Errorf("counts: +%d -%d, want +1 -1", rec.Inserted, rec.Deleted)
	}
	if rec.RowsAfter != dt.Storage.RowCount() {
		t.Errorf("RowsAfter mismatch: %d vs %d", rec.RowsAfter, dt.Storage.RowCount())
	}
}

func TestActionAndStateStrings(t *testing.T) {
	if core.ActionNoData.String() != "NO_DATA" || core.ActionReinitialize.String() != "REINITIALIZE" {
		t.Error("action names")
	}
	if core.StateActive.String() != "ACTIVE" || core.StateSuspended.String() != "SUSPENDED" {
		t.Error("state names")
	}
}

func TestConcurrentDistinctDTRefreshes(t *testing.T) {
	// Refresh must be safe for concurrent distinct-DT callers: the
	// parallel refresher runs a whole dependency wave this way. Shared
	// controller state (registry, frontier emission, storage reads,
	// commit path) is audited by the -race build.
	e := newEngine(t)
	names := []string{"c0", "c1", "c2", "c3", "c4", "c5"}
	for _, name := range names {
		e.MustExec(`CREATE DYNAMIC TABLE ` + name + ` TARGET_LAG = '1 minute' WAREHOUSE = wh
		            AS SELECT b, count(*) c, sum(a) s FROM src GROUP BY b`)
	}
	ctrl := e.Controller()
	for round := 0; round < 5; round++ {
		e.MustExec(`INSERT INTO src VALUES (100, 3), (101, 4)`)
		at := e.AdvanceTime(time.Minute)
		var wg sync.WaitGroup
		for _, name := range names {
			dt, err := e.DynamicTableHandle(name)
			if err != nil {
				t.Fatal(err)
			}
			wg.Add(1)
			go func(dt *core.DynamicTable) {
				defer wg.Done()
				if _, err := ctrl.Refresh(dt, at); err != nil {
					t.Errorf("refresh %s: %v", dt.Name, err)
				}
			}(dt)
		}
		wg.Wait()
	}
	for _, name := range names {
		if err := e.CheckDVS(name); err != nil {
			t.Errorf("DVS violated after concurrent refreshes: %v", err)
		}
	}
}

func TestConcurrentSameDTRefreshSkips(t *testing.T) {
	// Concurrent refreshes of the *same* DT serialize through the per-DT
	// refresh lock: exactly one caller wins any overlapping pair, the
	// loser reports ErrSkipped (§3.3.3) and never corrupts state.
	e := newEngine(t)
	e.MustExec(`CREATE DYNAMIC TABLE d TARGET_LAG = '1 minute' WAREHOUSE = wh
	            AS SELECT b, count(*) c FROM src GROUP BY b`)
	dt, err := e.DynamicTableHandle("d")
	if err != nil {
		t.Fatal(err)
	}
	ctrl := e.Controller()
	for round := 0; round < 10; round++ {
		e.MustExec(`INSERT INTO src VALUES (200, 5)`)
		at := e.AdvanceTime(time.Minute)
		var wg sync.WaitGroup
		for i := 0; i < 4; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				if _, err := ctrl.Refresh(dt, at); err != nil && !errors.Is(err, core.ErrSkipped) {
					t.Errorf("refresh: %v", err)
				}
			}()
		}
		wg.Wait()
	}
	if err := e.CheckDVS("d"); err != nil {
		t.Errorf("DVS violated: %v", err)
	}
}

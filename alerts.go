package dyntables

// SQL-programmable alerts: the engine side of the watchdog subsystem.
// CREATE ALERT declares a condition (any SELECT — typically over the
// INFORMATION_SCHEMA observability surface) plus an action; the watchdog
// evaluates due alerts at the end of every scheduler pass, on the virtual
// clock, so simulations stay deterministic and dtserve's wall-clock
// ticker drives production alerting for free. internal/alert holds the
// pure state machine (hysteresis, suppression); this file owns the
// registry, the DDL surface, evaluation and actions, and the WAL hooks.

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"dyntables/internal/alert"
	"dyntables/internal/obs"
	"dyntables/internal/sql"
	"dyntables/internal/trace"
	"dyntables/internal/types"
)

// DefaultAlertSuppression is the per-alert minimum gap between fired
// actions: a condition that resolves and re-trips inside the window
// transitions state but fires nothing, so a flapping condition cannot
// storm the action channel.
const DefaultAlertSuppression = 5 * time.Minute

// alertDetailRows bounds how many condition rows are sampled into the
// firing detail (and the webhook payload).
const alertDetailRows = 5

// alertEntry is one registered alert: the immutable definition plus the
// mutable evaluation state, guarded by Engine.alertMu.
type alertEntry struct {
	def       alert.Definition
	state     alert.State
	suspended bool
	// nextDue is the virtual instant of the next evaluation; zero means
	// due immediately.
	nextDue time.Time
}

// SetWebhookPoster overrides the webhook transport for every alert on
// this engine: post receives the URL and the encoded JSON payload and
// returns the HTTP status code. Tests install a hook here to capture
// firings without a network listener; nil restores real HTTP.
func (e *Engine) SetWebhookPoster(post func(url string, body []byte) (int, error)) {
	e.alertMu.Lock()
	defer e.alertMu.Unlock()
	e.alertNotifier.Post = post
}

// alertConfig derives the state-machine tuning for one alert.
func alertConfig(def alert.Definition) alert.Config {
	return alert.Config{Suppression: DefaultAlertSuppression}
}

// ---------------------------------------------------------------------------
// DDL surface
// ---------------------------------------------------------------------------

func (x *executor) execCreateAlert(stmt *sql.CreateAlertStmt) (*Result, error) {
	e := x.e
	def := alert.Definition{
		Name:          stmt.Name,
		Owner:         x.s.Role(),
		Schedule:      stmt.Schedule,
		ConditionText: stmt.ConditionText,
		Action:        alert.ActionKind(stmt.ActionKind),
		WebhookURL:    stmt.ActionURL,
		ActionSQL:     stmt.ActionSQL,
	}
	e.alertMu.Lock()
	if _, exists := e.alerts[def.Name]; exists && !stmt.OrReplace {
		e.alertMu.Unlock()
		return nil, fmt.Errorf("dyntables: alert %s already exists", def.Name)
	}
	e.alerts[def.Name] = &alertEntry{def: def}
	e.alertMu.Unlock()
	e.logCreateAlert(def, stmt.OrReplace)
	return &Result{Kind: "CREATE ALERT", Message: fmt.Sprintf("alert %s created", def.Name)}, nil
}

func (x *executor) execDropAlert(stmt *sql.DropStmt) (*Result, error) {
	e := x.e
	e.alertMu.Lock()
	_, ok := e.alerts[stmt.Name]
	if ok {
		delete(e.alerts, stmt.Name)
	}
	e.alertMu.Unlock()
	if !ok {
		return nil, fmt.Errorf("dyntables: alert %s does not exist", stmt.Name)
	}
	e.logDropAlert(stmt.Name)
	return &Result{Kind: "DROP", Message: fmt.Sprintf("ALERT %s dropped", stmt.Name)}, nil
}

func (x *executor) execAlterAlert(stmt *sql.AlterStmt) (*Result, error) {
	e := x.e
	if stmt.Action != "SUSPEND" && stmt.Action != "RESUME" {
		return nil, fmt.Errorf("dyntables: ALTER ALERT supports only SUSPEND and RESUME")
	}
	e.alertMu.Lock()
	entry, ok := e.alerts[stmt.Name]
	if ok {
		entry.suspended = stmt.Action == "SUSPEND"
		if stmt.Action == "RESUME" {
			// A resumed alert is due on the next pass.
			entry.nextDue = time.Time{}
		}
	}
	e.alertMu.Unlock()
	if !ok {
		return nil, fmt.Errorf("dyntables: alert %s does not exist", stmt.Name)
	}
	e.logAlterAlert(stmt.Name, stmt.Action)
	return &Result{Kind: "ALTER", Message: stmt.Action}, nil
}

// ---------------------------------------------------------------------------
// evaluation
// ---------------------------------------------------------------------------

// dueAlert is a snapshot of one alert taken under alertMu, evaluated
// without the lock (condition queries take statement read locks of
// their own).
type dueAlert struct {
	def   alert.Definition
	state alert.State
}

// evaluateAlerts runs the watchdog over every due, unsuspended alert.
// Called at the end of RunScheduler after the tick lock is released.
func (e *Engine) evaluateAlerts() {
	if e.closed.Load() {
		return
	}
	now := e.clk.Now()
	e.alertMu.Lock()
	due := make([]dueAlert, 0, len(e.alerts))
	for _, entry := range e.alerts {
		if entry.suspended || now.Before(entry.nextDue) {
			continue
		}
		entry.nextDue = now.Add(entry.def.Schedule)
		if entry.def.Schedule <= 0 {
			// Schedule 0: due again on the very next pass.
			entry.nextDue = time.Time{}
		}
		due = append(due, dueAlert{def: entry.def, state: entry.state})
	}
	e.alertMu.Unlock()
	sort.Slice(due, func(i, j int) bool { return due[i].def.Name < due[j].def.Name })
	for _, d := range due {
		e.evaluateAlert(d, now)
	}
}

// evaluateAlert evaluates one alert: it runs the condition SELECT
// through a session under the owner's role, steps the state machine,
// runs the action on a fresh firing, records the evaluation in the obs
// ring, and WAL-logs the state so recovery resumes without re-firing.
func (e *Engine) evaluateAlert(d dueAlert, now time.Time) {
	started := time.Now()
	root := e.trc.StartRoot("alert.evaluate", trace.A("alert", d.def.Name))
	ev := obs.AlertEvent{
		Alert:  d.def.Name,
		At:     now,
		Action: d.def.ActionText(),
		RootID: root.RootID(),
	}

	s := e.NewSession()
	defer s.Close()
	s.SetRole(d.def.Owner)

	condTrue, detail, err := e.evalAlertCondition(s, d.def, root)
	if err != nil {
		ev.Error = err.Error()
	}
	next, fired := alert.Step(d.state, condTrue, now, alertConfig(d.def))
	ev.Result = condTrue
	ev.Status = string(next.Status)
	ev.Fired = fired
	ev.Detail = strings.Join(detail, "; ")

	if fired {
		if actErr := e.runAlertAction(s, d.def, now, detail, root); actErr != nil {
			ev.ActionErr = actErr.Error()
		}
	}

	// Install the new state unless the alert was dropped or replaced
	// while evaluating.
	e.alertMu.Lock()
	entry, ok := e.alerts[d.def.Name]
	if ok && entry.def == d.def {
		entry.state = next
	} else {
		ok = false
	}
	var nextDue time.Time
	if ok {
		nextDue = entry.nextDue
	}
	e.alertMu.Unlock()
	if ok && (fired || next.Status != d.state.Status) {
		e.logAlertState(d.def.Name, next, nextDue)
	}

	ev.Duration = time.Since(started)
	e.trc.FinishRoot(root)
	e.rec.RecordAlert(ev)
}

// evalAlertCondition runs the condition SELECT and reports whether it
// returned rows (the EXISTS semantics), plus a bounded sample of the
// rows rendered as strings.
func (e *Engine) evalAlertCondition(s *Session, def alert.Definition, root *trace.Span) (bool, []string, error) {
	sp := root.Child("alert.condition")
	defer sp.End()
	res, err := s.Query(def.ConditionText)
	if err != nil {
		return false, nil, err
	}
	var detail []string
	for i, row := range res.Rows {
		if i >= alertDetailRows {
			break
		}
		parts := make([]string, len(row))
		for j, v := range row {
			parts[j] = v.String()
		}
		detail = append(detail, strings.Join(parts, ", "))
	}
	return len(res.Rows) > 0, detail, nil
}

// runAlertAction executes the alert's declared action on a firing.
func (e *Engine) runAlertAction(s *Session, def alert.Definition, now time.Time, detail []string, root *trace.Span) error {
	sp := root.Child("alert.action", trace.A("action", string(def.Action)))
	defer sp.End()
	switch def.Action {
	case alert.ActionWebhook:
		e.alertMu.Lock()
		n := *e.alertNotifier
		e.alertMu.Unlock()
		return n.Send(def.WebhookURL, alert.Payload{
			Alert:   def.Name,
			FiredAt: now,
			Status:  string(alert.Firing),
			Rows:    detail,
		})
	case alert.ActionSQL:
		_, err := s.Exec(def.ActionSQL)
		return err
	default:
		return nil
	}
}

// ---------------------------------------------------------------------------
// surfacing: SHOW ALERTS + INFORMATION_SCHEMA
// ---------------------------------------------------------------------------

// alertsRows builds INFORMATION_SCHEMA.ALERTS (and SHOW ALERTS): one row
// per registered alert with its definition and evaluation state.
func (e *Engine) alertsRows() ([]types.Row, error) {
	e.alertMu.Lock()
	entries := make([]alertEntry, 0, len(e.alerts))
	for _, entry := range e.alerts {
		entries = append(entries, *entry)
	}
	e.alertMu.Unlock()
	sort.Slice(entries, func(i, j int) bool { return entries[i].def.Name < entries[j].def.Name })
	rows := make([]types.Row, 0, len(entries))
	for _, entry := range entries {
		status := entry.state.Status
		if status == "" {
			status = alert.OK
		}
		rows = append(rows, types.Row{
			types.NewString(entry.def.Name),
			types.NewString(string(status)),
			types.NewBool(entry.suspended),
			types.NewInterval(entry.def.Schedule),
			types.NewString(entry.def.ActionText()),
			strOrNull(entry.def.Owner),
			types.NewString(entry.def.ConditionText),
			types.NewInt(entry.state.Firings),
			tsOrNull(entry.state.LastFired),
			tsOrNull(entry.nextDue),
		})
	}
	return rows, nil
}

// alertHistoryRows builds INFORMATION_SCHEMA.ALERT_HISTORY from the
// recorder's alert-evaluation ring, joinable against TRACE_SPANS on
// root_id.
func (e *Engine) alertHistoryRows() ([]types.Row, error) {
	events := e.rec.Alerts()
	rows := make([]types.Row, 0, len(events))
	for _, ev := range events {
		rows = append(rows, types.Row{
			types.NewInt(ev.Seq),
			types.NewString(ev.Alert),
			tsOrNull(ev.At),
			types.NewBool(ev.Result),
			types.NewString(ev.Status),
			types.NewBool(ev.Fired),
			strOrNull(ev.Action),
			strOrNull(ev.ActionErr),
			strOrNull(ev.Detail),
			intOrNull(ev.RootID),
			strOrNull(ev.Error),
			types.NewInterval(ev.Duration),
		})
	}
	return rows, nil
}

// ---------------------------------------------------------------------------
// durability bridge
// ---------------------------------------------------------------------------

// alertSnapshots serializes the registry for checkpointing, sorted by
// name for deterministic snapshots.
func (e *Engine) alertSnapshots() []alertSnap {
	e.alertMu.Lock()
	defer e.alertMu.Unlock()
	out := make([]alertSnap, 0, len(e.alerts))
	for _, entry := range e.alerts {
		out = append(out, alertSnap{
			def:       entry.def,
			state:     entry.state,
			suspended: entry.suspended,
			nextDue:   entry.nextDue,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].def.Name < out[j].def.Name })
	return out
}

// alertSnap is the engine-side serialized form of one alert, handed to
// the durability layer.
type alertSnap struct {
	def       alert.Definition
	state     alert.State
	suspended bool
	nextDue   time.Time
}

// installAlert registers an alert during recovery (snapshot restore or
// WAL replay), overwriting any previous registration of the same name.
func (e *Engine) installAlert(s alertSnap) {
	e.alertMu.Lock()
	defer e.alertMu.Unlock()
	e.alerts[s.def.Name] = &alertEntry{
		def:       s.def,
		state:     s.state,
		suspended: s.suspended,
		nextDue:   s.nextDue,
	}
}

// removeAlert unregisters an alert during WAL replay.
func (e *Engine) removeAlert(name string) {
	e.alertMu.Lock()
	defer e.alertMu.Unlock()
	delete(e.alerts, name)
}

// setAlertSuspended applies a replayed ALTER ALERT.
func (e *Engine) setAlertSuspended(name string, suspended bool) {
	e.alertMu.Lock()
	defer e.alertMu.Unlock()
	if entry, ok := e.alerts[name]; ok {
		entry.suspended = suspended
		if !suspended {
			entry.nextDue = time.Time{}
		}
	}
}

// setAlertState applies a replayed evaluation-state transition.
func (e *Engine) setAlertState(name string, st alert.State, nextDue time.Time) {
	e.alertMu.Lock()
	defer e.alertMu.Unlock()
	if entry, ok := e.alerts[name]; ok {
		entry.state = st
		entry.nextDue = nextDue
	}
}

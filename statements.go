package dyntables

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"time"

	"dyntables/internal/catalog"
	"dyntables/internal/core"
	"dyntables/internal/delta"
	"dyntables/internal/exec"
	"dyntables/internal/hlc"
	"dyntables/internal/ivm"
	"dyntables/internal/obs"
	"dyntables/internal/persist"
	"dyntables/internal/plan"
	"dyntables/internal/sql"
	"dyntables/internal/storage"
	"dyntables/internal/types"
	"dyntables/internal/warehouse"
)

// Result is the outcome of an Exec call.
type Result struct {
	// Kind names the executed statement (SELECT, CREATE TABLE, ...).
	Kind string
	// Columns and Rows carry SELECT output.
	Columns []string
	Rows    [][]types.Value
	// RowsAffected counts DML changes.
	RowsAffected int
	// Message carries informational output for DDL.
	Message string
}

// Exec parses and executes a single SQL statement on the default session.
func (e *Engine) Exec(text string) (*Result, error) { return e.def.Exec(text) }

// MustExec runs Exec and panics on error; intended for examples and tests.
func (e *Engine) MustExec(text string) *Result { return e.def.MustExec(text) }

// ExecScript executes a semicolon-separated script on the default
// session, stopping at the first error.
func (e *Engine) ExecScript(text string) ([]*Result, error) { return e.def.ExecScript(text) }

// Query executes a SELECT on the default session and returns its result.
func (e *Engine) Query(text string) (*Result, error) { return e.def.Query(text) }

// ManualRefresh refreshes a DT (and, as needed, its upstream DTs) at a
// data timestamp chosen after the command was issued (§3.1.2), using the
// default session's role. Requires the OPERATE privilege.
func (e *Engine) ManualRefresh(name string) error { return e.def.ManualRefresh(name) }

// Describe returns a DT's monitoring snapshot using the default session's
// role.
func (e *Engine) Describe(name string) (*DynamicTableStatus, error) { return e.def.Describe(name) }

// executor runs one statement for one session: it carries the execution
// context, the session (for role checks) and the bound parameters.
type executor struct {
	e      *Engine
	s      *Session
	ctx    context.Context
	params *plan.Params
}

// canceled returns the context's error, if any.
func (x *executor) canceled() error {
	if x.ctx != nil {
		return x.ctx.Err()
	}
	return nil
}

func (x *executor) execStmt(stmt sql.Statement) (*Result, error) {
	if err := x.canceled(); err != nil {
		return nil, err
	}
	switch s := stmt.(type) {
	case *sql.SelectStmt:
		return x.execSelect(s)
	case *sql.CreateTableStmt:
		return x.execCreateTable(s)
	case *sql.CreateViewStmt:
		return x.execCreateView(s)
	case *sql.CreateWarehouseStmt:
		return x.execCreateWarehouse(s)
	case *sql.CreateDynamicTableStmt:
		return x.execCreateDynamicTable(s)
	case *sql.CreateAlertStmt:
		return x.execCreateAlert(s)
	case *sql.InsertStmt:
		return x.execInsert(s)
	case *sql.UpdateStmt:
		return x.execUpdate(s)
	case *sql.DeleteStmt:
		return x.execDelete(s)
	case *sql.DropStmt:
		return x.execDrop(s)
	case *sql.UndropStmt:
		return x.execUndrop(s)
	case *sql.AlterStmt:
		return x.execAlter(s)
	case *sql.AlterSystemStmt:
		return x.execAlterSystem(s)
	case *sql.ShowStmt:
		return x.execShow(s)
	case *sql.ExplainStmt:
		return x.execExplain(s)
	default:
		return nil, fmt.Errorf("dyntables: unsupported statement %T", stmt)
	}
}

// ---------------------------------------------------------------------------
// SELECT
// ---------------------------------------------------------------------------

// planSelect implements the §4 read path: queries read the latest
// committed version of every source (Read Committed). Binding, privilege
// checks and version pinning happen while the statement lock is held;
// the returned pins let the cursor keep reading a consistent snapshot
// after the lock is released. A query whose only source is a single DT
// therefore observes one consistent snapshot as of that DT's data
// timestamp (Snapshot Isolation); queries mixing several DTs may observe
// different data timestamps per DT.
func (x *executor) planSelect(stmt *sql.SelectStmt) (plan.Node, map[int64]int64, error) {
	bound, err := plan.NewBinder(x.e).BindSelect(stmt)
	if err != nil {
		return nil, nil, err
	}
	if err := x.checkSelectPrivileges(bound); err != nil {
		return nil, nil, err
	}
	p := plan.Optimize(bound.Plan)
	pins := make(map[int64]int64)
	for _, scan := range plan.Scans(p) {
		id := scan.Table.ID()
		if _, done := pins[id]; !done {
			pins[id] = int64(scan.Table.VersionCount())
		}
	}
	return p, pins, nil
}

// runContext builds the executor environment reading the pinned versions.
// With the columnar path enabled, batchable subtrees read shared
// per-version column batches instead of copying the row map per scan.
func (x *executor) runContext(pins map[int64]int64) *exec.Context {
	ctx := &exec.Context{
		RowsOf: func(s *plan.Scan) (map[string]types.Row, error) {
			seq, ok := pins[s.Table.ID()]
			if !ok {
				seq = int64(s.Table.VersionCount())
			}
			return s.Table.Rows(seq)
		},
		Now:    x.e.clk.Now(),
		Params: x.params,
		Ctx:    x.ctx,
	}
	if x.e.ctrl.Columnar {
		ctx.BatchOf = func(s *plan.Scan) (*types.Batch, error) {
			seq, ok := pins[s.Table.ID()]
			if !ok {
				seq = int64(s.Table.VersionCount())
			}
			return s.Table.Batch(seq)
		}
	}
	return ctx
}

// pinVersions takes a storage-level pin on every pinned (table, seq) of
// the plan, so the compaction sweep cannot fold versions a live cursor
// still reads. It runs while the statement read lock is held (the sweep
// is a writer), so pin-taking is atomic with respect to sweeps. The
// returned release function drops the pins; it must be called exactly
// once.
func pinVersions(p plan.Node, pins map[int64]int64) func() {
	type pin struct {
		t   *storage.Table
		seq int64
	}
	var taken []pin
	seen := make(map[int64]bool)
	for _, scan := range plan.Scans(p) {
		id := scan.Table.ID()
		if seen[id] {
			continue
		}
		seen[id] = true
		if seq, ok := pins[id]; ok {
			scan.Table.Pin(seq)
			taken = append(taken, pin{t: scan.Table, seq: seq})
		}
	}
	return func() {
		for _, p := range taken {
			p.t.Unpin(p.seq)
		}
	}
}

// selectCursor opens a streaming cursor over a SELECT.
func (x *executor) selectCursor(stmt *sql.SelectStmt) (*Rows, error) {
	p, pins, err := x.planSelect(stmt)
	if err != nil {
		return nil, err
	}
	x.e.cursors.Add(1)
	return &Rows{
		cols:  p.Schema().Names(),
		it:    exec.Stream(p, x.runContext(pins)),
		eng:   x.e,
		unpin: pinVersions(p, pins),
	}, nil
}

// execSelect materializes a SELECT into a Result.
func (x *executor) execSelect(stmt *sql.SelectStmt) (*Result, error) {
	p, pins, err := x.planSelect(stmt)
	if err != nil {
		return nil, err
	}
	rows, err := exec.Collect(exec.Stream(p, x.runContext(pins)))
	if err != nil {
		return nil, err
	}
	res := &Result{Kind: "SELECT", Columns: p.Schema().Names()}
	for _, tr := range rows {
		res.Rows = append(res.Rows, tr.Row)
	}
	return res, nil
}

func (x *executor) checkSelectPrivileges(bound *plan.Bound) error {
	role := x.s.Role()
	for entryID := range bound.Deps {
		if !x.e.cat.HasPrivilege(entryID, catalog.PrivSelect, role) {
			entry, err := x.e.cat.GetByID(entryID)
			name := fmt.Sprintf("object %d", entryID)
			if err == nil {
				name = entry.Name
			}
			return fmt.Errorf("dyntables: role %q lacks SELECT on %s", role, name)
		}
	}
	return nil
}

// ---------------------------------------------------------------------------
// CREATE
// ---------------------------------------------------------------------------

func (x *executor) execCreateTable(stmt *sql.CreateTableStmt) (*Result, error) {
	e := x.e
	now := e.txns.Now()
	var table *storage.Table
	var rows []exec.TRow
	var cloneOf *storage.Table
	switch {
	case stmt.CloneOf != "":
		src, err := e.cat.Get(stmt.CloneOf)
		if err != nil {
			return nil, err
		}
		var srcTable *storage.Table
		switch payload := src.Payload.(type) {
		case *tableObject:
			srcTable = payload.table
		case *core.DynamicTable:
			srcTable = payload.Storage
		default:
			return nil, fmt.Errorf("dyntables: cannot clone %s", src.Kind)
		}
		clone, err := srcTable.Clone(now)
		if err != nil {
			return nil, err
		}
		table = clone
		cloneOf = srcTable
	case stmt.AsSelect != nil:
		res, err := x.execSelect(stmt.AsSelect)
		if err != nil {
			return nil, err
		}
		bound, err := plan.NewBinder(e).BindSelect(stmt.AsSelect)
		if err != nil {
			return nil, err
		}
		table = storage.NewTable(plan.Optimize(bound.Plan).Schema(), now)
		for _, r := range res.Rows {
			rows = append(rows, exec.TRow{ID: table.NextRowID(), Row: r})
		}
	default:
		schema := types.Schema{}
		for _, col := range stmt.Columns {
			kind, err := types.KindFromName(col.TypeName)
			if err != nil {
				return nil, err
			}
			schema.Columns = append(schema.Columns, types.Column{Name: col.Name, Kind: kind})
		}
		table = storage.NewTable(schema, now)
	}

	payload := &tableObject{table: table}
	var entry *catalog.Entry
	var err error
	if stmt.OrReplace {
		e.deregisterReplacedPayload(stmt.Name)
		entry, err = e.cat.Replace(stmt.Name, payload, x.s.Role(), nil, e.txns.Now())
	} else {
		entry, err = e.cat.Create(stmt.Name, payload, x.s.Role(), nil, e.txns.Now())
	}
	if err != nil {
		return nil, err
	}
	if err := e.logCreateTable(stmt, entry, table, cloneOf, now); err != nil {
		return nil, err
	}
	if len(rows) > 0 {
		tx := e.txns.Begin()
		var cs delta.ChangeSet
		for _, tr := range rows {
			cs.AddInsert(tr.ID, tr.Row)
		}
		if err := tx.Write(table, cs); err != nil {
			tx.Abort()
			return nil, err
		}
		if _, err := tx.Commit(); err != nil {
			return nil, err
		}
	}
	return &Result{Kind: "CREATE TABLE", Message: fmt.Sprintf("table %s created", stmt.Name)}, nil
}

func (x *executor) execCreateView(stmt *sql.CreateViewStmt) (*Result, error) {
	e := x.e
	// Validate the definition and capture dependencies. Views over
	// INFORMATION_SCHEMA are allowed: they expand at query time, so each
	// query re-materializes the current metadata snapshot.
	bound, err := plan.NewBinder(e).BindSelect(stmt.Query)
	if err != nil {
		return nil, fmt.Errorf("dyntables: invalid view definition: %w", err)
	}
	deps := depIDs(bound.Deps)
	payload := &viewObject{text: stmt.Text}
	ts := e.txns.Now()
	var entry *catalog.Entry
	if stmt.OrReplace {
		e.deregisterReplacedPayload(stmt.Name)
		entry, err = e.cat.Replace(stmt.Name, payload, x.s.Role(), deps, ts)
	} else {
		entry, err = e.cat.Create(stmt.Name, payload, x.s.Role(), deps, ts)
	}
	if err != nil {
		return nil, err
	}
	e.logCreateView(stmt, entry, deps, ts)
	return &Result{Kind: "CREATE VIEW", Message: fmt.Sprintf("view %s created", stmt.Name)}, nil
}

func depIDs(deps map[int64]int64) []int64 {
	out := make([]int64, 0, len(deps))
	for id := range deps {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func (x *executor) execCreateWarehouse(stmt *sql.CreateWarehouseStmt) (*Result, error) {
	e := x.e
	size, err := warehouse.ParseSize(stmt.Size)
	if err != nil {
		return nil, err
	}
	autoSuspend := stmt.AutoSuspend
	if autoSuspend == 0 {
		autoSuspend = 10 * time.Minute
	}
	ts := e.txns.Now()
	wh, err := e.pool.Create(stmt.Name, size, autoSuspend)
	if err != nil {
		if stmt.OrReplace {
			// Replacement keeps the existing warehouse identity; billing
			// history is retained.
			existing, gerr := e.pool.Get(stmt.Name)
			if gerr != nil {
				return nil, err
			}
			existing.Size = size
			existing.AutoSuspend = autoSuspend
			e.logCreateWarehouse(stmt.Name, x.s.Role(), 0, true, size, autoSuspend, ts)
			return &Result{Kind: "CREATE WAREHOUSE", Message: "warehouse replaced"}, nil
		}
		return nil, err
	}
	var entryID int64
	if !e.cat.Exists(stmt.Name) {
		entry, err := e.cat.Create(stmt.Name, &warehouseObject{wh: wh}, x.s.Role(), nil, ts)
		if err != nil {
			return nil, err
		}
		entryID = entry.ID
	}
	e.logCreateWarehouse(stmt.Name, x.s.Role(), entryID, stmt.OrReplace, size, autoSuspend, ts)
	return &Result{Kind: "CREATE WAREHOUSE", Message: fmt.Sprintf("warehouse %s created", stmt.Name)}, nil
}

func (x *executor) execCreateDynamicTable(stmt *sql.CreateDynamicTableStmt) (*Result, error) {
	e := x.e
	if stmt.CloneOf != "" {
		return x.cloneDynamicTable(stmt)
	}
	if stmt.Warehouse == "" {
		return nil, fmt.Errorf("dyntables: dynamic table %s requires WAREHOUSE", stmt.Name)
	}
	if _, err := e.pool.Get(stmt.Warehouse); err != nil {
		return nil, err
	}
	if stmt.Lag.Kind == sql.LagDuration && stmt.Lag.Duration < time.Minute {
		return nil, fmt.Errorf("dyntables: TARGET_LAG below the 1 minute minimum (§3.2)")
	}

	createdAt := e.txns.Now()
	dt, err := e.ctrl.Build(stmt, createdAt)
	if err != nil {
		return nil, err
	}

	// Dependencies and cycle check (§3.1.1: cycles are not allowed).
	bound, err := plan.NewBinder(e).BindSelect(stmt.Query)
	if err != nil {
		return nil, err
	}
	deps := depIDs(bound.Deps)

	var entry *catalog.Entry
	if stmt.OrReplace {
		if old, derr := e.cat.Get(stmt.Name); derr == nil {
			if oldDT, ok := old.Payload.(*core.DynamicTable); ok {
				e.sch.Untrack(oldDT)
				e.ctrl.Unregister(oldDT)
			}
		}
		e.deregisterReplacedPayload(stmt.Name)
		entry, err = e.cat.Replace(stmt.Name, dt, x.s.Role(), deps, e.txns.Now())
	} else {
		entry, err = e.cat.Create(stmt.Name, dt, x.s.Role(), deps, e.txns.Now())
	}
	if err != nil {
		return nil, err
	}
	if e.cat.WouldCycle(entry.ID, deps) {
		_ = e.cat.Drop(stmt.Name, e.txns.Now())
		return nil, fmt.Errorf("dyntables: dynamic table %s would create a dependency cycle", stmt.Name)
	}
	dt.EntryID = entry.ID
	e.ctrl.Register(dt)
	e.sch.Track(dt)
	e.recordDTGraph(dt.Name, deps)
	e.logCreateDT(stmt.OrReplace, entry, dt, x.s.Role(), deps, createdAt, "", hlc.Zero)

	// Initialization (§3.1.2): synchronous by default, reusing a recent
	// upstream data timestamp when possible.
	if stmt.Initialize != "ON_SCHEDULE" {
		initTS, err := e.ctrl.ChooseInitTimestamp(dt, e.clk.Now())
		if err != nil {
			return nil, err
		}
		if err := e.refreshAt(dt, initTS); err != nil {
			return nil, fmt.Errorf("dyntables: initializing %s: %w", stmt.Name, err)
		}
	}
	return &Result{Kind: "CREATE DYNAMIC TABLE",
		Message: fmt.Sprintf("dynamic table %s created (%s refresh mode)", stmt.Name, dt.EffectiveMode)}, nil
}

// cloneDynamicTable implements CREATE DYNAMIC TABLE x CLONE y (§3.4):
// metadata-only copy of contents; the clone keeps the source's frontier so
// it avoids reinitialization.
func (x *executor) cloneDynamicTable(stmt *sql.CreateDynamicTableStmt) (*Result, error) {
	e := x.e
	_, src, err := e.dynamicTable(stmt.CloneOf)
	if err != nil {
		return nil, err
	}
	cloneAt := e.txns.Now()
	clone, err := src.CloneAt(cloneAt)
	if err != nil {
		return nil, err
	}
	clone.Name = stmt.Name
	if stmt.Lag.Kind == sql.LagDuration || stmt.Lag.Kind == sql.LagDownstream {
		// CLONE statements may override nothing; keep the source's lag.
		clone.Lag = src.Lag
	}
	bound, err := plan.NewBinder(e).BindSelect(mustParseSelect(clone.Text))
	if err != nil {
		return nil, err
	}
	entry, err := e.cat.Create(stmt.Name, clone, x.s.Role(), depIDs(bound.Deps), e.txns.Now())
	if err != nil {
		return nil, err
	}
	clone.EntryID = entry.ID
	e.ctrl.Register(clone)
	e.sch.Track(clone)
	e.recordDTGraph(clone.Name, depIDs(bound.Deps))
	e.logCreateDT(false, entry, clone, x.s.Role(), depIDs(bound.Deps), cloneAt, stmt.CloneOf, cloneAt)
	return &Result{Kind: "CREATE DYNAMIC TABLE",
		Message: fmt.Sprintf("dynamic table %s cloned from %s", stmt.Name, stmt.CloneOf)}, nil
}

func mustParseSelect(text string) *sql.SelectStmt {
	stmt, err := sql.Parse(text)
	if err != nil {
		panic(fmt.Sprintf("dyntables: stored defining query failed to parse: %v", err))
	}
	return stmt.(*sql.SelectStmt)
}

// refreshAt refreshes the DT at the given data timestamp, first ensuring
// every upstream DT has a version at exactly that timestamp (manual
// refresh semantics, §3.1.2).
func (e *Engine) refreshAt(dt *core.DynamicTable, dataTS time.Time) error {
	ups, err := e.ctrl.Upstreams(dt)
	if err != nil {
		return err
	}
	for _, up := range ups {
		if _, ok := up.VersionAtDataTS(dataTS); !ok {
			if err := e.refreshAt(up, dataTS); err != nil {
				return err
			}
		}
	}
	rec, err := e.ctrl.Refresh(dt, dataTS)
	if err != nil {
		return err
	}
	// Charge the warehouse for non-trivial work.
	if rec.Action != core.ActionNoData && rec.Action != core.ActionSkip {
		if wh, werr := e.pool.Get(dt.Warehouse); werr == nil {
			job := wh.Submit(dataTS, rec.SourceRowsScanned, e.model, dt.Name)
			// Backfill the job's virtual timing onto the recorded event
			// (manual refreshes run outside a scheduler tick: no wave, no
			// worker slot).
			e.rec.AnnotateExecution(dt.Name, dataTS, -1, -1, job.Start, job.End)
		}
	}
	return nil
}

// manualRefresh implements Session.ManualRefresh under the statement lock.
func (x *executor) manualRefresh(name string) error {
	e := x.e
	entry, dt, err := e.dynamicTable(name)
	if err != nil {
		return err
	}
	role := x.s.Role()
	if !e.cat.HasPrivilege(entry.ID, catalog.PrivOperate, role) {
		return fmt.Errorf("dyntables: role %q lacks OPERATE on %s", role, name)
	}
	return e.refreshAt(dt, e.clk.Now())
}

// ---------------------------------------------------------------------------
// DML
// ---------------------------------------------------------------------------

func (x *executor) execInsert(stmt *sql.InsertStmt) (*Result, error) {
	e := x.e
	_, table, err := e.baseTable(stmt.Table)
	if err != nil {
		return nil, err
	}
	schema := table.Schema()

	// Column targets default to the full schema.
	targets := make([]int, 0, schema.Len())
	if len(stmt.Columns) == 0 {
		for i := 0; i < schema.Len(); i++ {
			targets = append(targets, i)
		}
	} else {
		for _, name := range stmt.Columns {
			idx := schema.Index(name)
			if idx < 0 {
				return nil, fmt.Errorf("dyntables: table %s has no column %q", stmt.Table, name)
			}
			targets = append(targets, idx)
		}
	}

	ev := &plan.EvalContext{Now: e.clk.Now(), Params: x.params}
	var newRows []types.Row
	switch {
	case len(stmt.Rows) > 0:
		binder := plan.NewBinder(e)
		for _, exprs := range stmt.Rows {
			if err := x.canceled(); err != nil {
				return nil, err
			}
			if len(exprs) != len(targets) {
				return nil, fmt.Errorf("dyntables: INSERT has %d values for %d columns", len(exprs), len(targets))
			}
			row := make(types.Row, schema.Len())
			for i, expr := range exprs {
				bound, err := binder.BindConstExpr(expr)
				if err != nil {
					return nil, err
				}
				v, err := plan.Eval(bound, nil, ev)
				if err != nil {
					return nil, err
				}
				coerced, err := coerce(v, schema.Column(targets[i]).Kind)
				if err != nil {
					return nil, fmt.Errorf("dyntables: column %s: %w", schema.Column(targets[i]).Name, err)
				}
				row[targets[i]] = coerced
			}
			newRows = append(newRows, row)
		}
	case stmt.Query != nil:
		res, err := x.execSelect(stmt.Query)
		if err != nil {
			return nil, err
		}
		for _, r := range res.Rows {
			if len(r) != len(targets) {
				return nil, fmt.Errorf("dyntables: INSERT SELECT produces %d columns for %d targets", len(r), len(targets))
			}
			row := make(types.Row, schema.Len())
			for i, v := range r {
				coerced, err := coerce(v, schema.Column(targets[i]).Kind)
				if err != nil {
					return nil, err
				}
				row[targets[i]] = coerced
			}
			newRows = append(newRows, row)
		}
	default:
		return nil, fmt.Errorf("dyntables: INSERT requires VALUES or SELECT")
	}

	tx := e.txns.Begin()
	if stmt.Overwrite {
		contents := make(map[string]types.Row, len(newRows))
		for _, r := range newRows {
			contents[table.NextRowID()] = r
		}
		if err := tx.Overwrite(table, contents); err != nil {
			tx.Abort()
			return nil, err
		}
	} else {
		var cs delta.ChangeSet
		for _, r := range newRows {
			cs.AddInsert(table.NextRowID(), r)
		}
		if err := tx.Write(table, cs); err != nil {
			tx.Abort()
			return nil, err
		}
	}
	if _, err := tx.Commit(); err != nil {
		return nil, err
	}
	return &Result{Kind: "INSERT", RowsAffected: len(newRows)}, nil
}

// coerce casts a value to the column kind, tolerating NULL and exact
// matches.
func coerce(v types.Value, kind types.Kind) (types.Value, error) {
	if v.IsNull() || v.Kind() == kind {
		return v, nil
	}
	return types.Cast(v, kind)
}

func (x *executor) execUpdate(stmt *sql.UpdateStmt) (*Result, error) {
	e := x.e
	_, table, err := e.baseTable(stmt.Table)
	if err != nil {
		return nil, err
	}
	schema := table.Schema()
	binder := plan.NewBinder(e)
	where, assignments, err := binder.BindDMLExprs(stmt.Table, schema, stmt.Where, stmt.Set)
	if err != nil {
		return nil, err
	}

	tx := e.txns.Begin()
	rows, err := tx.Read(table)
	if err != nil {
		tx.Abort()
		return nil, err
	}
	ev := &plan.EvalContext{Now: e.clk.Now(), Params: x.params}
	var cs delta.ChangeSet
	affected := 0
	for id, row := range rows {
		if err := x.canceled(); err != nil {
			tx.Abort()
			return nil, err
		}
		if where != nil {
			ok, err := plan.EvalBool(where, row, ev)
			if err != nil {
				tx.Abort()
				return nil, err
			}
			if !ok {
				continue
			}
		}
		newRow := row.Clone()
		for _, a := range assignments {
			v, err := plan.Eval(a.Expr, row, ev)
			if err != nil {
				tx.Abort()
				return nil, err
			}
			coerced, err := coerce(v, schema.Column(a.ColumnIdx).Kind)
			if err != nil {
				tx.Abort()
				return nil, err
			}
			newRow[a.ColumnIdx] = coerced
		}
		if !newRow.Equal(row) {
			cs.AddDelete(id, row)
			cs.AddInsert(id, newRow)
			affected++
		}
	}
	if err := tx.Write(table, cs); err != nil {
		tx.Abort()
		return nil, err
	}
	if _, err := tx.Commit(); err != nil {
		return nil, err
	}
	return &Result{Kind: "UPDATE", RowsAffected: affected}, nil
}

func (x *executor) execDelete(stmt *sql.DeleteStmt) (*Result, error) {
	e := x.e
	_, table, err := e.baseTable(stmt.Table)
	if err != nil {
		return nil, err
	}
	binder := plan.NewBinder(e)
	where, _, err := binder.BindDMLExprs(stmt.Table, table.Schema(), stmt.Where, nil)
	if err != nil {
		return nil, err
	}

	tx := e.txns.Begin()
	rows, err := tx.Read(table)
	if err != nil {
		tx.Abort()
		return nil, err
	}
	ev := &plan.EvalContext{Now: e.clk.Now(), Params: x.params}
	var cs delta.ChangeSet
	for id, row := range rows {
		if err := x.canceled(); err != nil {
			tx.Abort()
			return nil, err
		}
		if where != nil {
			ok, err := plan.EvalBool(where, row, ev)
			if err != nil {
				tx.Abort()
				return nil, err
			}
			if !ok {
				continue
			}
		}
		cs.AddDelete(id, row)
	}
	affected := cs.Len()
	if err := tx.Write(table, cs); err != nil {
		tx.Abort()
		return nil, err
	}
	if _, err := tx.Commit(); err != nil {
		return nil, err
	}
	return &Result{Kind: "DELETE", RowsAffected: affected}, nil
}

// ---------------------------------------------------------------------------
// DROP / UNDROP / ALTER
// ---------------------------------------------------------------------------

func (x *executor) execDrop(stmt *sql.DropStmt) (*Result, error) {
	e := x.e
	// Alerts live in the watchdog registry, not the catalog.
	if stmt.Kind == "ALERT" {
		return x.execDropAlert(stmt)
	}
	entry, err := e.cat.Get(stmt.Name)
	if err != nil {
		return nil, err
	}
	if dt, ok := entry.Payload.(*core.DynamicTable); ok {
		e.sch.Untrack(dt)
	}
	ts := e.txns.Now()
	if err := e.cat.Drop(stmt.Name, ts); err != nil {
		return nil, err
	}
	e.logDropUndrop(persist.KindDrop, stmt.Name, ts)
	return &Result{Kind: "DROP", Message: fmt.Sprintf("%s %s dropped", stmt.Kind, stmt.Name)}, nil
}

func (x *executor) execUndrop(stmt *sql.UndropStmt) (*Result, error) {
	e := x.e
	if stmt.Kind == "ALERT" {
		return nil, fmt.Errorf("dyntables: UNDROP does not support alerts")
	}
	ts := e.txns.Now()
	entry, err := e.cat.Undrop(stmt.Name, ts)
	if err != nil {
		return nil, err
	}
	if dt, ok := entry.Payload.(*core.DynamicTable); ok {
		e.sch.Track(dt)
	}
	e.logDropUndrop(persist.KindUndrop, stmt.Name, ts)
	return &Result{Kind: "UNDROP", Message: fmt.Sprintf("%s %s restored", stmt.Kind, stmt.Name)}, nil
}

func (x *executor) execAlter(stmt *sql.AlterStmt) (*Result, error) {
	e := x.e
	if stmt.Kind == "ALERT" {
		return x.execAlterAlert(stmt)
	}
	switch stmt.Action {
	case "RENAME":
		if entry, err := e.cat.Get(stmt.Name); err == nil {
			if dt, ok := entry.Payload.(*core.DynamicTable); ok {
				dt.Name = stmt.Target
			}
		}
		ts := e.txns.Now()
		if err := e.cat.Rename(stmt.Name, stmt.Target, ts); err != nil {
			return nil, err
		}
		e.logRenameSwap(persist.KindRename, stmt.Name, stmt.Target, ts)
		return &Result{Kind: "ALTER", Message: "renamed"}, nil
	case "SWAP":
		ts := e.txns.Now()
		if err := e.cat.Swap(stmt.Name, stmt.Target, ts); err != nil {
			return nil, err
		}
		e.logRenameSwap(persist.KindSwap, stmt.Name, stmt.Target, ts)
		return &Result{Kind: "ALTER", Message: "swapped"}, nil
	case "SUSPEND", "RESUME", "REFRESH", "SET_LAG", "SET_MODE":
		entry, dt, err := e.dynamicTable(stmt.Name)
		if err != nil {
			return nil, err
		}
		role := x.s.Role()
		if !e.cat.HasPrivilege(entry.ID, catalog.PrivOperate, role) {
			return nil, fmt.Errorf("dyntables: role %q lacks OPERATE on %s", role, stmt.Name)
		}
		switch stmt.Action {
		case "SUSPEND":
			dt.Suspend()
			e.logAlterDT(stmt.Name, "SUSPEND", nil)
		case "RESUME":
			dt.Resume()
			e.logAlterDT(stmt.Name, "RESUME", nil)
		case "REFRESH":
			// Durable via the refresh's own commit + frontier records.
			if err := e.refreshAt(dt, e.clk.Now()); err != nil {
				return nil, err
			}
		case "SET_LAG":
			dt.Lag = *stmt.Lag
			e.logAlterDT(stmt.Name, "SET_LAG", stmt.Lag)
		case "SET_MODE":
			// Per-DT override of the adaptive chooser: pinning to FULL or
			// INCREMENTAL takes the DT out of adaptive control; setting it
			// back to AUTO re-enters with a fresh (cold-start) decision.
			if err := e.setRefreshMode(dt, *stmt.Mode); err != nil {
				return nil, err
			}
			e.logAlterDTMode(stmt.Name, *stmt.Mode)
			return &Result{Kind: "ALTER",
				Message: fmt.Sprintf("REFRESH_MODE = %s (effective %s)", stmt.Mode, dt.CurrentMode())}, nil
		}
		return &Result{Kind: "ALTER", Message: stmt.Action}, nil
	default:
		return nil, fmt.Errorf("dyntables: unsupported ALTER action %q", stmt.Action)
	}
}

// setRefreshMode re-declares a DT's refresh mode under the exclusive
// statement lock: it validates the pin against the current plan (an
// INCREMENTAL pin on a non-incrementalizable query fails), installs the
// new declared and static effective modes, and clears any sticky
// adaptive decision so an AUTO re-declaration starts from a cold-start
// decision.
func (e *Engine) setRefreshMode(dt *core.DynamicTable, mode sql.RefreshMode) error {
	effective, err := e.ctrl.StaticMode(dt, mode)
	if err != nil {
		return err
	}
	dt.DeclaredMode = mode
	dt.EffectiveMode = effective
	dt.ClearAdaptiveDecision()
	return nil
}

// execAlterSystem applies engine-wide runtime tuning. It runs under the
// exclusive statement lock (no refresh or differentiation is in flight),
// so the knobs swap without racing readers. The settings are process
// state, not catalog state: they are not write-ahead-logged, and a
// reopened engine starts from its Config.
func (x *executor) execAlterSystem(stmt *sql.AlterSystemStmt) (*Result, error) {
	e := x.e
	switch stmt.Param {
	case "REFRESH_WORKERS":
		// Same semantics as Config.RefreshWorkers: 0 is the serial
		// deterministic default. (Host-derived width has no SQL spelling;
		// use Config{RefreshWorkers: -1} at construction.)
		if stmt.Value < 0 {
			return nil, fmt.Errorf("dyntables: REFRESH_WORKERS must be >= 0 (0 = serial)")
		}
		n := int(stmt.Value)
		if n == 0 {
			n = 1
		}
		e.refr.SetWorkers(n)
		return &Result{Kind: "ALTER SYSTEM",
			Message: fmt.Sprintf("REFRESH_WORKERS = %d", e.refr.Workers())}, nil
	case "DELTA_PARALLELISM":
		if stmt.Value < 0 {
			return nil, fmt.Errorf("dyntables: DELTA_PARALLELISM must be >= 0")
		}
		e.ctrl.DeltaParallelism = int(stmt.Value)
		return &Result{Kind: "ALTER SYSTEM",
			Message: fmt.Sprintf("DELTA_PARALLELISM = %d", stmt.Value)}, nil
	case "HISTORY_CAPACITY":
		// Rebounds every observability ring (refresh history, lag
		// samples, metering, graph edges) and each DT's in-engine history
		// ring, evicting the oldest events that no longer fit. On an
		// engine built with recording disabled (Config.HistoryCapacity <
		// 0) this turns recording on.
		if stmt.Value <= 0 {
			return nil, fmt.Errorf("dyntables: HISTORY_CAPACITY must be > 0")
		}
		n := int(stmt.Value)
		e.rec.SetEnabled(true)
		e.rec.SetCapacity(n)
		// Tracing follows the same switch but keeps its own bounded ring
		// (root count, not event count), so it is enabled, not resized.
		e.trc.SetEnabled(true)
		e.ctrl.HistoryCapacity = n
		for _, entry := range e.cat.List(catalog.KindDynamicTable) {
			if dt, ok := entry.Payload.(*core.DynamicTable); ok {
				dt.SetHistoryCapacity(n)
			}
		}
		return &Result{Kind: "ALTER SYSTEM",
			Message: fmt.Sprintf("HISTORY_CAPACITY = %d", n)}, nil
	case "SLOW_QUERY_MS":
		// Trace-retention floor: root traces faster than this keep only
		// their root span (child spans are dropped at finish), so slow
		// statements and refreshes survive longer in the bounded span
		// store. 0 retains every span of every trace.
		if stmt.Value < 0 {
			return nil, fmt.Errorf("dyntables: SLOW_QUERY_MS must be >= 0 (0 = retain all spans)")
		}
		e.trc.SetSlowQueryMs(stmt.Value)
		return &Result{Kind: "ALTER SYSTEM",
			Message: fmt.Sprintf("SLOW_QUERY_MS = %d", stmt.Value)}, nil
	case "COLUMNAR":
		// Gates the columnar execution fast path (0 = row-at-a-time
		// everywhere, 1 = columnar for batchable plans). Results are
		// byte-identical either way; the switch exists for A/B
		// measurement and as an escape hatch.
		switch stmt.Value {
		case 0:
			e.ctrl.Columnar = false
			return &Result{Kind: "ALTER SYSTEM", Message: "COLUMNAR = 0 (disabled)"}, nil
		case 1:
			e.ctrl.Columnar = true
			return &Result{Kind: "ALTER SYSTEM", Message: "COLUMNAR = 1 (enabled)"}, nil
		default:
			return nil, fmt.Errorf("dyntables: COLUMNAR must be 0 or 1")
		}
	case "COMPACTION_HORIZON":
		// Version-chain retention: n > 0 keeps the last n versions of
		// every table readable and lets the scheduler's sweep fold older
		// change sets into a snapshot; 0 disables compaction (unbounded
		// time travel, the default). The sweep never folds a pinned
		// version or a DT refresh frontier, so lowering the horizon takes
		// effect gradually as cursors close and frontiers advance.
		if stmt.Value < 0 {
			return nil, fmt.Errorf("dyntables: COMPACTION_HORIZON must be >= 0 (0 = keep all versions)")
		}
		e.compactionHorizon = int(stmt.Value)
		return &Result{Kind: "ALTER SYSTEM",
			Message: fmt.Sprintf("COMPACTION_HORIZON = %d", stmt.Value)}, nil
	case "ADAPTIVE_REFRESH":
		// Gates the per-refresh REFRESH_MODE=AUTO chooser: 0 disables
		// (AUTO falls back to its static resolution), 1 enables, n > 1
		// enables with a smoothing window of n refreshes. Sticky per-DT
		// decisions persist across a disable; re-enabling resumes from
		// them.
		switch {
		case stmt.Value < 0:
			return nil, fmt.Errorf("dyntables: ADAPTIVE_REFRESH must be >= 0 (0 = off, 1 = on, n > 1 = on with window n)")
		case stmt.Value == 0:
			e.ctrl.Adaptive.SetEnabled(false)
			return &Result{Kind: "ALTER SYSTEM", Message: "ADAPTIVE_REFRESH = 0 (disabled)"}, nil
		default:
			e.ctrl.Adaptive.SetEnabled(true)
			if stmt.Value > 1 {
				e.ctrl.Adaptive.SetWindow(int(stmt.Value))
			}
			return &Result{Kind: "ALTER SYSTEM",
				Message: fmt.Sprintf("ADAPTIVE_REFRESH = 1 (window %d)", e.ctrl.Adaptive.Config().Window)}, nil
		}
	default:
		return nil, fmt.Errorf("dyntables: unknown system parameter %q", stmt.Param)
	}
}

// ---------------------------------------------------------------------------
// SHOW / EXPLAIN
// ---------------------------------------------------------------------------

// rowsToValues adapts builder rows to the Result row representation.
func rowsToValues(rows []types.Row) [][]types.Value {
	out := make([][]types.Value, len(rows))
	for i, r := range rows {
		out[i] = r
	}
	return out
}

// execShow renders engine metadata as a result set. SHOW statements are
// the operator-facing shorthand over the INFORMATION_SCHEMA virtual
// tables: the same rows, no query required.
func (x *executor) execShow(stmt *sql.ShowStmt) (*Result, error) {
	e := x.e
	switch stmt.Kind {
	case "DYNAMIC TABLES":
		rows, err := e.dynamicTablesRows()
		if err != nil {
			return nil, err
		}
		return &Result{
			Kind:    "SHOW DYNAMIC TABLES",
			Columns: dynamicTablesSchema.Names(),
			Rows:    rowsToValues(rows),
		}, nil
	case "WAREHOUSES":
		return &Result{
			Kind:    "SHOW WAREHOUSES",
			Columns: showWarehousesColumns,
			Rows:    rowsToValues(e.warehousesRows()),
		}, nil
	case "HEALTH":
		rows, err := e.dtHealthRows()
		if err != nil {
			return nil, err
		}
		return &Result{
			Kind:    "SHOW HEALTH",
			Columns: showHealthColumns,
			Rows:    rowsToValues(rows),
		}, nil
	case "ALERTS":
		rows, err := e.alertsRows()
		if err != nil {
			return nil, err
		}
		return &Result{
			Kind:    "SHOW ALERTS",
			Columns: alertsSchema.Names(),
			Rows:    rowsToValues(rows),
		}, nil
	default:
		return nil, fmt.Errorf("dyntables: unsupported SHOW %s", stmt.Kind)
	}
}

// execExplain renders the bound plan tree of a SELECT, or — for CREATE
// DYNAMIC TABLE — the refresh-mode decision (incremental vs full and
// why), the upstream frontier the first refresh would read, and the
// defining query's plan. Nothing is executed or created.
func (x *executor) execExplain(stmt *sql.ExplainStmt) (*Result, error) {
	e := x.e
	res := &Result{Kind: "EXPLAIN", Columns: []string{"PLAN"}}
	emit := func(lines ...string) {
		for _, l := range lines {
			res.Rows = append(res.Rows, types.Row{types.NewString(l)})
		}
	}
	planLines := func(p plan.Node, indent string) {
		for _, l := range strings.Split(strings.TrimRight(plan.Explain(p), "\n"), "\n") {
			emit(indent + l)
		}
	}
	if stmt.DTName != "" {
		if err := x.explainDynamicTable(stmt.DTName, emit, planLines); err != nil {
			return nil, err
		}
		return res, nil
	}
	switch t := stmt.Target.(type) {
	case *sql.SelectStmt:
		if stmt.Analyze {
			return x.execExplainAnalyze(t)
		}
		bound, err := plan.NewBinder(e).BindSelect(t)
		if err != nil {
			return nil, err
		}
		planLines(plan.Optimize(bound.Plan), "")
	case *sql.CreateDynamicTableStmt:
		if t.CloneOf != "" {
			return nil, fmt.Errorf("dyntables: EXPLAIN does not support CLONE")
		}
		// Bind exactly the way the real CREATE's controller would — the
		// catalog-only resolver — so EXPLAIN reports the same acceptance
		// or rejection (e.g. defining queries over INFORMATION_SCHEMA).
		bound, err := plan.NewBinder(plan.ResolverFunc(e.resolveCatalogTable)).BindSelect(t.Query)
		if err != nil {
			return nil, err
		}
		incErr := ivm.Incrementalizable(bound.Plan)
		emit(fmt.Sprintf("CREATE DYNAMIC TABLE %s", t.Name))
		switch {
		case t.Mode == sql.RefreshIncremental && incErr != nil:
			emit(fmt.Sprintf("  refresh_mode: ERROR — INCREMENTAL requested but %v", incErr))
		case t.Mode == sql.RefreshFull:
			emit("  refresh_mode: FULL (declared)")
		case incErr == nil:
			mode := "AUTO"
			if t.Mode == sql.RefreshIncremental {
				mode = "declared"
			}
			emit(fmt.Sprintf("  refresh_mode: INCREMENTAL (%s: defining query is incrementalizable)", mode))
			if t.Mode == sql.RefreshAuto && e.ctrl.Adaptive.Enabled() {
				emit(fmt.Sprintf("  adaptive_refresh: enabled (window %d) — effective mode adjusts per refresh from observed change volume",
					e.ctrl.Adaptive.Config().Window))
			}
		default:
			emit(fmt.Sprintf("  refresh_mode: FULL (AUTO: %v)", incErr))
		}
		emit(fmt.Sprintf("  target_lag: %s", targetLagText(t.Lag)))
		if t.Warehouse != "" {
			emit(fmt.Sprintf("  warehouse: %s", t.Warehouse))
		}
		optimized := plan.Optimize(bound.Plan)
		emit("  upstream frontier:")
		seen := map[int64]bool{}
		for _, scan := range plan.Scans(optimized) {
			id := scan.Table.ID()
			if seen[id] {
				continue
			}
			seen[id] = true
			if up, isDT := e.ctrl.LookupByStorage(id); isDT {
				emit(fmt.Sprintf("    %s DYNAMIC TABLE version=%d data_ts=%s",
					scan.Name, scan.Table.VersionCount(),
					up.DataTimestamp().UTC().Format(time.RFC3339)))
				continue
			}
			emit(fmt.Sprintf("    %s TABLE version=%d", scan.Name, scan.Table.VersionCount()))
		}
		emit("  plan:")
		planLines(optimized, "    ")
	default:
		return nil, fmt.Errorf("dyntables: EXPLAIN supports SELECT and CREATE DYNAMIC TABLE only")
	}
	return res, nil
}

// execExplainAnalyze runs the SELECT to completion with a per-node
// statistics collector attached and renders the plan tree annotated
// with actual rows, loop counts and inclusive wall time per operator —
// Postgres-style EXPLAIN ANALYZE. The query really executes (same
// privilege checks and pinned snapshot as a plain SELECT) but its rows
// are discarded; canceling the statement context aborts it mid-scan
// like any other query.
func (x *executor) execExplainAnalyze(stmt *sql.SelectStmt) (*Result, error) {
	p, pins, err := x.planSelect(stmt)
	if err != nil {
		return nil, err
	}
	stats := exec.NewNodeStats()
	rctx := x.runContext(pins)
	rctx.Stats = stats
	meter := obs.StartMeter()
	start := time.Now()
	rows, err := exec.Collect(exec.Stream(p, rctx))
	if err != nil {
		return nil, err
	}
	total := time.Since(start)
	use := meter.Stop()
	annotated := plan.ExplainAnnotated(p, func(n plan.Node) string {
		st, ok := stats.Lookup(n)
		if !ok {
			return " (never executed)"
		}
		return fmt.Sprintf(" (actual rows=%d loops=%d time=%s)",
			st.Rows, st.Loops, st.Time.Round(time.Microsecond))
	})
	res := &Result{Kind: "EXPLAIN", Columns: []string{"PLAN"}}
	for _, l := range strings.Split(strings.TrimRight(annotated, "\n"), "\n") {
		res.Rows = append(res.Rows, types.Row{types.NewString(l)})
	}
	res.Rows = append(res.Rows, types.Row{types.NewString(
		fmt.Sprintf("Execution: %d rows in %s (cpu=%s alloc_bytes=%d allocs=%d)",
			len(rows), total.Round(time.Microsecond),
			use.CPU.Round(time.Microsecond), use.AllocBytes, use.AllocObjects))})
	return res, nil
}

// explainDynamicTable renders EXPLAIN DYNAMIC TABLE <name>: the DT's
// declared and effective refresh modes with the reason the effective
// mode is in force (including the adaptive chooser's last per-refresh
// decision and its cost signals), the frontier, and the defining
// query's plan.
func (x *executor) explainDynamicTable(name string, emit func(...string), planLines func(plan.Node, string)) error {
	e := x.e
	entry, dt, err := e.dynamicTable(name)
	if err != nil {
		return err
	}
	if !e.cat.HasPrivilege(entry.ID, catalog.PrivMonitor, x.s.Role()) {
		return fmt.Errorf("dyntables: role %q lacks MONITOR on %s", x.s.Role(), name)
	}
	mode, reason := dt.ModeDecision()
	emit(fmt.Sprintf("DYNAMIC TABLE %s", dt.Name))
	emit(fmt.Sprintf("  state: %s", dt.State()))
	emit(fmt.Sprintf("  declared_mode: %s", dt.DeclaredMode))
	emit(fmt.Sprintf("  effective_mode: %s", mode))
	emit(fmt.Sprintf("  mode_reason: %s", reason))
	adaptiveState := "disabled"
	if e.ctrl.Adaptive.Enabled() {
		adaptiveState = fmt.Sprintf("enabled (window %d)", e.ctrl.Adaptive.Config().Window)
	}
	emit(fmt.Sprintf("  adaptive_refresh: %s", adaptiveState))
	if rec, ok := dt.LastRecord(); ok && rec.FullScanEstimate > 0 {
		emit(fmt.Sprintf("  last refresh: %s at %s, changed_rows=%d full_scan_estimate=%d",
			rec.Action, rec.DataTS.UTC().Format(time.RFC3339), rec.SourceRowsChanged, rec.FullScanEstimate))
	}
	emit(fmt.Sprintf("  target_lag: %s", targetLagText(dt.Lag)))
	emit(fmt.Sprintf("  warehouse: %s", dt.Warehouse))
	if ts := dt.DataTimestamp(); !ts.IsZero() {
		emit(fmt.Sprintf("  data_ts: %s", ts.UTC().Format(time.RFC3339)))
	}
	bound, err := plan.NewBinder(plan.ResolverFunc(e.resolveCatalogTable)).BindSelect(mustParseSelect(dt.Text))
	if err != nil {
		return err
	}
	emit("  plan:")
	planLines(plan.Optimize(bound.Plan), "    ")
	return nil
}

// ---------------------------------------------------------------------------
// observability
// ---------------------------------------------------------------------------

// DynamicTableStatus is a monitoring snapshot; retrieving it requires the
// MONITOR privilege (§3.4).
type DynamicTableStatus struct {
	Name  string
	State string
	// DeclaredMode is the user's REFRESH_MODE declaration; EffectiveMode
	// the mode currently in force (the adaptive chooser's decision for
	// AUTO DTs) and ModeReason why.
	DeclaredMode  string
	EffectiveMode string
	ModeReason    string
	DataTimestamp time.Time
	Lag           time.Duration
	TargetLag     sql.TargetLag
	Rows          int
	ErrorCount    int
	History       []core.RefreshRecord
}

// describe implements Session.Describe under the statement lock.
func (x *executor) describe(name string) (*DynamicTableStatus, error) {
	e := x.e
	entry, dt, err := e.dynamicTable(name)
	if err != nil {
		return nil, err
	}
	role := x.s.Role()
	if !e.cat.HasPrivilege(entry.ID, catalog.PrivMonitor, role) {
		return nil, fmt.Errorf("dyntables: role %q lacks MONITOR on %s", role, name)
	}
	mode, reason := dt.ModeDecision()
	return &DynamicTableStatus{
		Name:          dt.Name,
		State:         dt.State().String(),
		DeclaredMode:  dt.DeclaredMode.String(),
		EffectiveMode: mode.String(),
		ModeReason:    reason,
		DataTimestamp: dt.DataTimestamp(),
		Lag:           dt.CurrentLag(e.clk.Now()),
		TargetLag:     dt.Lag,
		Rows:          dt.Storage.RowCount(),
		ErrorCount:    dt.ErrorCount(),
		History:       dt.History(),
	}, nil
}

// CheckDVS verifies delayed view semantics for a DT: its stored contents
// must equal its defining query evaluated as of its data timestamp — the
// randomized-testing oracle of §6.1.
func (e *Engine) CheckDVS(name string) error {
	e.stmtMu.RLock()
	defer e.stmtMu.RUnlock()
	_, dt, err := e.dynamicTable(name)
	if err != nil {
		return err
	}
	return e.ctrl.CheckDVS(dt)
}

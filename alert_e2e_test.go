package dyntables

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"dyntables/internal/alert"
	"dyntables/internal/server"
	"dyntables/internal/warehouse"
)

// webhookRecorder is a test double for the alert notifier's HTTP layer:
// it captures every payload the watchdog would POST.
type webhookRecorder struct {
	mu    sync.Mutex
	calls []alert.Payload
	urls  []string
}

func (w *webhookRecorder) post(url string, body []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	var p alert.Payload
	if err := json.Unmarshal(body, &p); err != nil {
		return 0, err
	}
	w.calls = append(w.calls, p)
	w.urls = append(w.urls, url)
	return 200, nil
}

func (w *webhookRecorder) count() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.calls)
}

// slowDAG builds the health fixture's 3-DT DAG on a durable engine: src
// feeds slow_up (whose refreshes blow the 1-minute target under the
// 5s/row cost model), slow_up feeds down on its own warehouse (so blame
// must point upstream), and tiny feeds fast as the healthy control.
func slowDAG(t *testing.T, dir string) *Engine {
	t.Helper()
	e := openSlow(t, dir)
	s := e.NewSession()
	defer s.Close()
	s.MustExec(`CREATE WAREHOUSE wh_up`)
	s.MustExec(`CREATE WAREHOUSE wh_down`)
	s.MustExec(`CREATE WAREHOUSE wh_fast`)
	s.MustExec(`CREATE TABLE src (k INT, v INT)`)
	s.MustExec(`CREATE TABLE tiny (k INT)`)
	s.MustExec(`CREATE DYNAMIC TABLE slow_up TARGET_LAG = '1 minute' WAREHOUSE = wh_up
		AS SELECT k, sum(v) s FROM src GROUP BY k`)
	s.MustExec(`CREATE DYNAMIC TABLE down TARGET_LAG = '1 minute' WAREHOUSE = wh_down
		AS SELECT k, s FROM slow_up WHERE s >= 0`)
	s.MustExec(`CREATE DYNAMIC TABLE fast TARGET_LAG = '5 minutes' WAREHOUSE = wh_fast
		AS SELECT count(*) c FROM tiny`)
	return e
}

// openSlow opens (or reopens) the durable engine with the slow cost
// model; reopening recovers whatever the DAG and watchdog logged.
func openSlow(t *testing.T, dir string) *Engine {
	t.Helper()
	e, err := Open(dir, WithCostModel(warehouse.CostModel{Fixed: 2 * time.Second, PerRow: 5 * time.Second}))
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// tick applies one change batch and runs one scheduler pass (which also
// evaluates alerts).
func tick(t *testing.T, e *Engine, s *Session, n int) {
	t.Helper()
	var vals []string
	for i := 0; i < 20; i++ {
		vals = append(vals, fmt.Sprintf("(%d, %d)", i%5, n*20+i))
	}
	s.MustExec(`INSERT INTO src VALUES ` + strings.Join(vals, ", "))
	s.MustExec(fmt.Sprintf(`INSERT INTO tiny VALUES (%d)`, n))
	e.AdvanceTime(30 * time.Second)
	if err := e.RunScheduler(); err != nil {
		t.Fatal(err)
	}
}

// TestAlertWatchdogEndToEnd is the PR's acceptance test: a DT_HEALTH-
// watching alert over a DAG with a forced slow upstream trips exactly
// once despite repeated evaluations, the webhook test hook receives the
// alert name and the blamed DT, ALERT_HISTORY joins TRACE_SPANS on
// root_id over the wire, and after a kill-and-reopen the definition and
// firing state are recovered and evaluation resumes without re-firing.
func TestAlertWatchdogEndToEnd(t *testing.T) {
	dir := t.TempDir()
	e := slowDAG(t, dir)
	defer e.Close()
	hook := &webhookRecorder{}
	e.SetWebhookPoster(hook.post)

	s := e.NewSession()
	defer s.Close()
	s.MustExec(`CREATE ALERT slo_watch
		IF (EXISTS (SELECT dt, blame FROM INFORMATION_SCHEMA.DT_HEALTH
		            WHERE status = 'MISSING_SLO' AND blame IS NOT NULL))
		THEN CALL WEBHOOK 'https://hooks.example/slo'`)

	for n := 0; n < 10; n++ {
		tick(t, e, s, n)
	}

	// Fired exactly once: the edge evaluation ran the webhook, every
	// later true evaluation held the FIRING state without re-firing.
	if got := hook.count(); got != 1 {
		t.Fatalf("webhook posted %d times, want exactly 1", got)
	}
	hook.mu.Lock()
	payload, url := hook.calls[0], hook.urls[0]
	hook.mu.Unlock()
	if url != "https://hooks.example/slo" {
		t.Errorf("webhook url = %q", url)
	}
	if payload.Alert != "slo_watch" || payload.Status != "FIRING" {
		t.Errorf("payload = %+v, want alert slo_watch FIRING", payload)
	}
	if joined := strings.Join(payload.Rows, "; "); !strings.Contains(joined, "slow_up") {
		t.Errorf("payload rows %q do not name the blamed DT slow_up", joined)
	}

	res, err := s.Query(`SELECT status, firings FROM INFORMATION_SCHEMA.ALERTS WHERE name = 'slo_watch'`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].String() != "FIRING" || res.Rows[0][1].String() != "1" {
		t.Fatalf("ALERTS row = %v, want FIRING with 1 firing", res.Rows)
	}

	// The firing joins the span forest over the wire: serve this engine
	// and run the ALERT_HISTORY ⋈ TRACE_SPANS join through the protocol.
	srv := server.New(server.Config{Backend: NewServerBackend(e)})
	ts := httptest.NewServer(srv.Handler())
	cli := server.NewClient(ts.URL, "")
	ctx := context.Background()
	remote, err := cli.NewSession(ctx, "")
	if err != nil {
		t.Fatal(err)
	}
	joined, err := remote.Exec(ctx, `
		SELECT a.alert, a.detail, t.name
		FROM INFORMATION_SCHEMA.ALERT_HISTORY a
		JOIN INFORMATION_SCHEMA.TRACE_SPANS t ON a.root_id = t.root_id
		WHERE a.fired AND t.parent_id IS NULL`)
	if err != nil {
		t.Fatal(err)
	}
	if len(joined.Rows) != 1 {
		t.Fatalf("wire ALERT_HISTORY x TRACE_SPANS join returned %d rows, want 1", len(joined.Rows))
	}
	if got := fmt.Sprint(joined.Rows[0][2]); got != "alert.evaluate" {
		t.Errorf("joined root span is %q, want alert.evaluate", got)
	}
	if err := remote.Close(); err != nil {
		t.Fatal(err)
	}
	srv.Shutdown()
	ts.Close()

	evalsBefore := len(e.Observability().Alerts())

	// Kill (no graceful close) and reopen: the definition and the FIRING
	// state must recover from WAL + checkpoint.
	if err := e.crash(); err != nil {
		t.Fatal(err)
	}
	e2 := openSlow(t, dir)
	defer e2.Close()
	hook2 := &webhookRecorder{}
	e2.SetWebhookPoster(hook2.post)
	s2 := e2.NewSession()
	defer s2.Close()

	res, err = s2.Query(`SELECT status, firings, condition FROM INFORMATION_SCHEMA.ALERTS WHERE name = 'slo_watch'`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("alert definition lost across reopen: %v", res.Rows)
	}
	if got := res.Rows[0][0].String(); got != "FIRING" {
		t.Errorf("recovered status = %q, want FIRING", got)
	}
	if got := res.Rows[0][1].String(); got != "1" {
		t.Errorf("recovered firings = %s, want 1", got)
	}
	if cond := res.Rows[0][2].String(); !strings.Contains(cond, "DT_HEALTH") {
		t.Errorf("recovered condition %q lost the DT_HEALTH reference", cond)
	}

	// Evaluation resumes — and because the recovered state is already
	// FIRING, the still-true condition must NOT re-fire the action.
	for n := 10; n < 13; n++ {
		tick(t, e2, s2, n)
	}
	if got := len(e2.Observability().Alerts()); got < 3 {
		t.Fatalf("post-reopen evaluations = %d, want >= 3 (before crash: %d)", got, evalsBefore)
	}
	if got := hook2.count(); got != 0 {
		t.Fatalf("recovered alert re-fired %d times; FIRING state was not restored", got)
	}
	res, err = s2.Query(`SELECT firings FROM INFORMATION_SCHEMA.ALERTS WHERE name = 'slo_watch'`)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Rows[0][0].String(); got != "1" {
		t.Fatalf("firings after reopen+resume = %s, want still 1", got)
	}
}

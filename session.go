package dyntables

import (
	"context"
	"errors"
	"fmt"
	"iter"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"dyntables/internal/exec"
	"dyntables/internal/obs"
	"dyntables/internal/plan"
	"dyntables/internal/sql"
	"dyntables/internal/trace"
	"dyntables/internal/types"
)

// Session is a unit of interaction with an Engine: it carries the role
// used for privilege checks and provides statement execution with context
// cancellation and bind parameters. Sessions are cheap; create one per
// goroutine or per request. A single Session serializes its own role
// accesses but statements from different sessions run concurrently.
type Session struct {
	eng *Engine
	// id is the engine-unique session number reported in
	// INFORMATION_SCHEMA.QUERY_HISTORY.
	id int64

	mu   sync.RWMutex
	role string

	// stmts tracks prepared statements so Close can invalidate them.
	stmts  map[*Stmt]struct{}
	closed bool
}

// NewSession creates a session with the default ADMIN role.
func (e *Engine) NewSession() *Session {
	s := &Session{eng: e, id: e.sessSeq.Add(1), role: "ADMIN", stmts: make(map[*Stmt]struct{})}
	e.sessMu.Lock()
	if e.sessions != nil {
		e.sessions[s] = struct{}{}
	}
	e.sessMu.Unlock()
	return s
}

// Engine returns the session's engine.
func (s *Session) Engine() *Engine { return s.eng }

// ID returns the session's engine-unique number, matching the
// session_id column of INFORMATION_SCHEMA.QUERY_HISTORY.
func (s *Session) ID() int64 { return s.id }

// Close releases the session: every statement prepared on it is
// invalidated (its Exec/Query calls fail afterwards) and the session
// stops accepting statements. Close is idempotent. The engine's Close
// closes every live session the same way.
func (s *Session) Close() error {
	s.eng.sessMu.Lock()
	delete(s.eng.sessions, s)
	s.eng.sessMu.Unlock()
	s.invalidate()
	return nil
}

// invalidate marks the session and its prepared statements closed.
func (s *Session) invalidate() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	stmts := make([]*Stmt, 0, len(s.stmts))
	for st := range s.stmts {
		stmts = append(stmts, st)
	}
	s.stmts = make(map[*Stmt]struct{})
	s.mu.Unlock()
	for _, st := range stmts {
		st.markClosed()
	}
}

// checkOpen verifies both the session and its engine accept statements.
func (s *Session) checkOpen() error {
	if err := s.eng.checkOpen(); err != nil {
		return err
	}
	s.mu.RLock()
	closed := s.closed
	s.mu.RUnlock()
	if closed {
		return fmt.Errorf("dyntables: session is closed")
	}
	return nil
}

// SetRole switches the session role used for privilege checks.
func (s *Session) SetRole(role string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.role = role
}

// Role returns the session role.
func (s *Session) Role() string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.role
}

// NamedArg binds a value to a `:name` placeholder; construct with Named.
type NamedArg struct {
	Name  string
	Value any
}

// Named returns a NamedArg for use as an ExecContext/QueryContext
// argument: Named("id", 7) binds the `:id` placeholder.
func Named(name string, value any) NamedArg {
	return NamedArg{Name: name, Value: value}
}

// ExecContext parses and executes one SQL statement with the given bind
// arguments. Positional `?` placeholders bind plain arguments in order;
// `:name` placeholders bind NamedArg values. The context cancels
// execution between rows.
func (s *Session) ExecContext(ctx context.Context, text string, args ...any) (*Result, error) {
	stmt, err := sql.Parse(text)
	if err != nil {
		return nil, err
	}
	if err := rejectStoredPlaceholders(stmt); err != nil {
		return nil, err
	}
	positional, names := sql.CollectPlaceholders(stmt)
	params, err := bindArgs(positional, names, args)
	if err != nil {
		return nil, err
	}
	return s.execStatement(ctx, text, stmt, params)
}

// Exec is ExecContext with a background context.
func (s *Session) Exec(text string, args ...any) (*Result, error) {
	return s.ExecContext(context.Background(), text, args...)
}

// MustExec runs Exec and panics on error; intended for examples and tests.
func (s *Session) MustExec(text string, args ...any) *Result {
	res, err := s.Exec(text, args...)
	if err != nil {
		panic(fmt.Sprintf("dyntables: %v", err))
	}
	return res
}

// QueryContext executes a SELECT and returns a streaming Rows cursor. The
// plan is bound and its source versions pinned under the statement lock,
// then the lock is released: iterating the cursor never blocks DDL, and
// canceling ctx aborts the scan and releases the cursor.
func (s *Session) QueryContext(ctx context.Context, text string, args ...any) (*Rows, error) {
	stmt, err := sql.Parse(text)
	if err != nil {
		return nil, err
	}
	sel, ok := stmt.(*sql.SelectStmt)
	if !ok {
		return nil, fmt.Errorf("dyntables: Query requires a SELECT statement")
	}
	positional, names := sql.CollectPlaceholders(stmt)
	params, err := bindArgs(positional, names, args)
	if err != nil {
		return nil, err
	}
	return s.queryCursor(ctx, text, sel, params)
}

// queryCursor opens the streaming cursor shared by Session.QueryContext
// and Stmt.QueryContext: the plan binds and pins under the statement
// lock, then the cursor streams lock-free. The statement's QUERY_HISTORY
// event is recorded when the cursor is released (served rows and total
// wall time are only known then); a bind error records an ERROR event
// immediately.
func (s *Session) queryCursor(ctx context.Context, text string, sel *sql.SelectStmt, params *plan.Params) (*Rows, error) {
	if err := s.checkOpen(); err != nil {
		return nil, err
	}
	e := s.eng
	start := time.Now()
	root := e.trc.StartRoot("statement", trace.A("kind", "SELECT"))
	e.stmtMu.RLock()
	x := &executor{e: e, s: s, ctx: ctx, params: params}
	cur, err := x.selectCursor(sel)
	e.stmtMu.RUnlock()
	if err != nil {
		root.SetAttr("status", "ERROR")
		e.trc.FinishRoot(root)
		e.rec.RecordStatement(obs.StatementEvent{
			SessionID: s.id, Role: s.Role(), Text: strings.TrimSpace(text), Kind: "SELECT",
			Status: "ERROR", Start: start, Duration: time.Since(start),
			RootID: root.RootID(), Error: err.Error(),
		})
		return nil, err
	}
	cur.sess = s
	cur.text = strings.TrimSpace(text)
	cur.start = start
	cur.root = root
	return cur, nil
}

// Query executes a SELECT with a background context and materializes the
// full result.
func (s *Session) Query(text string, args ...any) (*Result, error) {
	res, err := s.ExecContext(context.Background(), text, args...)
	if err != nil {
		return nil, err
	}
	if res.Kind != "SELECT" {
		return nil, fmt.Errorf("dyntables: Query requires a SELECT, got %s", res.Kind)
	}
	return res, nil
}

// ExecScriptContext executes a semicolon-separated script, stopping at
// the first error or context cancellation. Scripts do not take bind
// arguments.
func (s *Session) ExecScriptContext(ctx context.Context, text string) ([]*Result, error) {
	stmts, err := sql.ParseScript(text)
	if err != nil {
		return nil, err
	}
	var out []*Result
	for i, stmt := range stmts {
		if err := ctx.Err(); err != nil {
			return out, err
		}
		if err := rejectStoredPlaceholders(stmt); err != nil {
			return out, fmt.Errorf("statement %d: %w", i+1, err)
		}
		res, err := s.execStatement(ctx, text, stmt, nil)
		if err != nil {
			return out, fmt.Errorf("statement %d: %w", i+1, err)
		}
		out = append(out, res)
	}
	return out, nil
}

// ExecScript is ExecScriptContext with a background context.
func (s *Session) ExecScript(text string) ([]*Result, error) {
	return s.ExecScriptContext(context.Background(), text)
}

// ManualRefreshContext refreshes a DT (and, as needed, its upstream DTs)
// at a data timestamp chosen after the command was issued (§3.1.2).
// Requires the OPERATE privilege.
func (s *Session) ManualRefreshContext(ctx context.Context, name string) error {
	if err := s.checkOpen(); err != nil {
		return err
	}
	e := s.eng
	e.stmtMu.RLock()
	err := e.checkOpen()
	if err == nil {
		x := &executor{e: e, s: s, ctx: ctx}
		err = x.manualRefresh(name)
	}
	e.stmtMu.RUnlock()
	e.afterWrite()
	return err
}

// ManualRefresh is ManualRefreshContext with a background context.
func (s *Session) ManualRefresh(name string) error {
	return s.ManualRefreshContext(context.Background(), name)
}

// Describe returns a DT's monitoring snapshot; requires the MONITOR
// privilege.
func (s *Session) Describe(name string) (*DynamicTableStatus, error) {
	e := s.eng
	e.stmtMu.RLock()
	defer e.stmtMu.RUnlock()
	x := &executor{e: e, s: s, ctx: context.Background()}
	return x.describe(name)
}

// execStatement routes one parsed statement through the engine's
// statement lock: DDL takes the exclusive lock, everything else runs as a
// parallel reader. Once the lock is released, a durable engine may fold
// the WAL into a checkpoint. Every statement publishes one QUERY_HISTORY
// event and one root trace; text carries the submitted SQL (bind-argument
// values are never recorded).
func (s *Session) execStatement(ctx context.Context, text string, stmt sql.Statement, params *plan.Params) (*Result, error) {
	if err := s.checkOpen(); err != nil {
		return nil, err
	}
	e := s.eng
	start := time.Now()
	root := e.trc.StartRoot("statement")
	if reqID := obs.RequestIDFrom(ctx); reqID != "" {
		root.SetAttr("request_id", reqID)
	}
	meter := obs.StartMeter()
	res, err := s.execStatementLocked(ctx, stmt, params)
	use := meter.Stop()
	ev := obs.StatementEvent{
		SessionID: s.id,
		Role:      s.Role(),
		Text:      strings.TrimSpace(text),
		Start:     start,
		Duration:  time.Since(start),
		RootID:    root.RootID(),
	}
	switch {
	case err == nil:
		ev.Status = "SUCCESS"
		ev.Kind = res.Kind
		if res.Kind == "SELECT" {
			ev.Rows = int64(len(res.Rows))
		} else {
			ev.Rows = int64(res.RowsAffected)
		}
		root.SetAttr("kind", res.Kind)
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		ev.Status = "CANCELED"
		ev.Error = err.Error()
	default:
		ev.Status = "ERROR"
		ev.Error = err.Error()
	}
	root.SetAttr("status", ev.Status)
	root.SetAttr("cpu", use.CPU.String())
	e.trc.FinishRoot(root)
	e.rec.RecordStatement(ev)
	e.rec.RecordResource(obs.ResourceEvent{
		Kind:         obs.ResourceStatement,
		Name:         ev.Kind,
		RootID:       root.RootID(),
		Start:        use.Start,
		CPU:          use.CPU,
		AllocBytes:   use.AllocBytes,
		AllocObjects: use.AllocObjects,
		Rows:         ev.Rows,
	})
	e.afterWrite()
	return res, err
}

func (s *Session) execStatementLocked(ctx context.Context, stmt sql.Statement, params *plan.Params) (*Result, error) {
	e := s.eng
	if isDDL(stmt) {
		e.stmtMu.Lock()
		defer e.stmtMu.Unlock()
	} else {
		e.stmtMu.RLock()
		defer e.stmtMu.RUnlock()
	}
	// Re-check under the lock: a concurrent Close drains in-flight
	// statements via the exclusive lock, so anything passing here commits
	// before the final checkpoint, and anything after it fails cleanly
	// instead of writing to a closed WAL.
	if err := e.checkOpen(); err != nil {
		return nil, err
	}
	x := &executor{e: e, s: s, ctx: ctx, params: params}
	return x.execStmt(stmt)
}

// isDDL reports whether the statement changes the catalog and must
// exclude concurrent readers. SHOW and EXPLAIN only read engine
// metadata, so they run as parallel readers like queries.
func isDDL(stmt sql.Statement) bool {
	switch stmt.(type) {
	case *sql.SelectStmt, *sql.InsertStmt, *sql.UpdateStmt, *sql.DeleteStmt,
		*sql.ShowStmt, *sql.ExplainStmt:
		return false
	default:
		return true
	}
}

// rejectStoredPlaceholders refuses placeholders in defining queries that
// are stored and re-executed later (views, dynamic tables): there is no
// session to supply values at refresh time.
func rejectStoredPlaceholders(stmt sql.Statement) error {
	switch stmt.(type) {
	case *sql.CreateViewStmt, *sql.CreateDynamicTableStmt, *sql.CreateAlertStmt:
		if n, names := sql.CollectPlaceholders(stmt); n > 0 || len(names) > 0 {
			return fmt.Errorf("dyntables: bind placeholders are not allowed in stored defining queries")
		}
	}
	return nil
}

// ---------------------------------------------------------------------------
// prepared statements
// ---------------------------------------------------------------------------

// Stmt is a prepared statement: the SQL is parsed and its placeholders
// collected once; each execution binds fresh arguments and re-binds
// against the current catalog (so prepared statements survive concurrent
// DDL). A Stmt is safe for concurrent use. Statements belong to the
// session that prepared them: closing the session (or the engine)
// invalidates them.
type Stmt struct {
	sess   *Session
	text   string
	parsed sql.Statement
	isSel  bool
	// positional and names cache the placeholder shape collected at
	// Prepare time.
	positional int
	names      []string

	closed atomic.Bool
}

// Prepare parses a statement for repeated execution with `?` and `:name`
// placeholders. The statement is tracked by the session and invalidated
// when the session or engine closes.
func (s *Session) Prepare(text string) (*Stmt, error) {
	if err := s.checkOpen(); err != nil {
		return nil, err
	}
	stmt, err := sql.Parse(text)
	if err != nil {
		return nil, err
	}
	if err := rejectStoredPlaceholders(stmt); err != nil {
		return nil, err
	}
	_, isSel := stmt.(*sql.SelectStmt)
	positional, names := sql.CollectPlaceholders(stmt)
	st := &Stmt{
		sess: s, text: text, parsed: stmt, isSel: isSel,
		positional: positional, names: names,
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, fmt.Errorf("dyntables: session is closed")
	}
	s.stmts[st] = struct{}{}
	s.mu.Unlock()
	return st, nil
}

func (st *Stmt) checkOpen() error {
	if st.closed.Load() {
		return fmt.Errorf("dyntables: prepared statement is closed")
	}
	return nil
}

// ExecContext executes the prepared statement with the given arguments.
func (st *Stmt) ExecContext(ctx context.Context, args ...any) (*Result, error) {
	if err := st.checkOpen(); err != nil {
		return nil, err
	}
	params, err := bindArgs(st.positional, st.names, args)
	if err != nil {
		return nil, err
	}
	return st.sess.execStatement(ctx, st.text, st.parsed, params)
}

// Exec is ExecContext with a background context.
func (st *Stmt) Exec(args ...any) (*Result, error) {
	return st.ExecContext(context.Background(), args...)
}

// QueryContext executes a prepared SELECT, returning a streaming cursor.
func (st *Stmt) QueryContext(ctx context.Context, args ...any) (*Rows, error) {
	if err := st.checkOpen(); err != nil {
		return nil, err
	}
	if !st.isSel {
		return nil, fmt.Errorf("dyntables: prepared statement is not a SELECT")
	}
	params, err := bindArgs(st.positional, st.names, args)
	if err != nil {
		return nil, err
	}
	return st.sess.queryCursor(ctx, st.text, st.parsed.(*sql.SelectStmt), params)
}

// Close releases the prepared statement: the session stops tracking it
// and subsequent Exec/Query calls fail. Close is idempotent.
func (st *Stmt) Close() error {
	if st.closed.CompareAndSwap(false, true) {
		s := st.sess
		s.mu.Lock()
		delete(s.stmts, st)
		s.mu.Unlock()
	}
	return nil
}

// markClosed invalidates the statement during session close (the session
// already dropped its tracking entry).
func (st *Stmt) markClosed() { st.closed.Store(true) }

// ---------------------------------------------------------------------------
// argument binding
// ---------------------------------------------------------------------------

// bindArgs validates the call arguments against the statement's
// placeholder shape (as returned by sql.CollectPlaceholders) and converts
// them to SQL values.
func bindArgs(positional int, names []string, args []any) (*plan.Params, error) {
	if positional > 0 && len(names) > 0 {
		return nil, fmt.Errorf("dyntables: statement mixes positional (?) and named (:name) placeholders")
	}

	var pos []types.Value
	named := map[string]types.Value{}
	for i, a := range args {
		if na, ok := a.(NamedArg); ok {
			v, err := toValue(na.Value)
			if err != nil {
				return nil, fmt.Errorf("dyntables: argument :%s: %w", na.Name, err)
			}
			named[strings.ToUpper(na.Name)] = v
			continue
		}
		v, err := toValue(a)
		if err != nil {
			return nil, fmt.Errorf("dyntables: argument %d: %w", i+1, err)
		}
		pos = append(pos, v)
	}
	if len(pos) > 0 && len(named) > 0 {
		return nil, fmt.Errorf("dyntables: cannot mix positional and named arguments in one call")
	}

	switch {
	case positional > 0:
		if len(named) > 0 {
			return nil, fmt.Errorf("dyntables: statement uses positional (?) placeholders; bind plain arguments, not dyntables.Named")
		}
		if len(pos) != positional {
			return nil, fmt.Errorf("dyntables: statement has %d positional placeholders, got %d arguments",
				positional, len(pos))
		}
	case len(names) > 0:
		if len(pos) > 0 {
			return nil, fmt.Errorf("dyntables: statement uses named (:name) placeholders; bind with dyntables.Named")
		}
		for _, n := range names {
			if _, ok := named[n]; !ok {
				return nil, fmt.Errorf("dyntables: no value bound for placeholder :%s", strings.ToLower(n))
			}
		}
		if len(named) > len(names) {
			want := map[string]bool{}
			for _, n := range names {
				want[n] = true
			}
			for n := range named {
				if !want[n] {
					return nil, fmt.Errorf("dyntables: argument :%s matches no placeholder", strings.ToLower(n))
				}
			}
		}
	default:
		if len(args) > 0 {
			return nil, fmt.Errorf("dyntables: statement has no placeholders, got %d arguments", len(args))
		}
		return nil, nil
	}
	return &plan.Params{Positional: pos, Named: named}, nil
}

// toValue converts a Go argument to a SQL value.
func toValue(a any) (types.Value, error) {
	switch v := a.(type) {
	case nil:
		return types.Null, nil
	case types.Value:
		return v, nil
	case bool:
		return types.NewBool(v), nil
	case int:
		return types.NewInt(int64(v)), nil
	case int8:
		return types.NewInt(int64(v)), nil
	case int16:
		return types.NewInt(int64(v)), nil
	case int32:
		return types.NewInt(int64(v)), nil
	case int64:
		return types.NewInt(v), nil
	case uint8:
		return types.NewInt(int64(v)), nil
	case uint16:
		return types.NewInt(int64(v)), nil
	case uint32:
		return types.NewInt(int64(v)), nil
	case float32:
		return types.NewFloat(float64(v)), nil
	case float64:
		return types.NewFloat(v), nil
	case string:
		return types.NewString(v), nil
	case time.Time:
		return types.NewTimestamp(v), nil
	case time.Duration:
		return types.NewInterval(v), nil
	case map[string]any:
		return types.NewVariant(v), nil
	case []any:
		return types.NewVariant(v), nil
	default:
		return types.Null, fmt.Errorf("unsupported argument type %T", a)
	}
}

// ---------------------------------------------------------------------------
// streaming cursor
// ---------------------------------------------------------------------------

// Rows is a streaming query cursor. Rows are pulled from the executor one
// at a time: iterate with Next/Scan, or range over Seq. Always Close the
// cursor (Close is idempotent); cancellation of the query context also
// releases it on the next Next call.
type Rows struct {
	cols []string
	it   exec.RowIter
	eng  *Engine

	// QUERY_HISTORY accounting, set by queryCursor: the statement event
	// closes at cursor release with the served row count. sess is nil
	// for cursors opened outside the session path (internal scans).
	sess   *Session
	text   string
	start  time.Time
	root   *trace.Span
	served int64

	// unpin releases the storage version pins taken at plan time, which
	// keep the cursor's snapshot safe from the compaction sweep. Nil for
	// cursors opened over pin-free plans.
	unpin func()

	cur      types.Row
	err      error
	released bool
}

// Columns returns the result column names.
func (r *Rows) Columns() []string { return append([]string(nil), r.cols...) }

// Next advances to the next row, reporting whether one is available. It
// returns false at the end of the result set, on error, or once the query
// context is canceled; check Err afterwards.
func (r *Rows) Next() bool {
	if r.released || r.err != nil {
		return false
	}
	tr, ok, err := r.it.Next()
	if err != nil {
		r.err = err
		r.release()
		return false
	}
	if !ok {
		r.release()
		return false
	}
	r.cur = tr.Row
	r.served++
	return true
}

// Row returns the current row's values.
func (r *Rows) Row() types.Row { return r.cur }

// Scan copies the current row into dest pointers. Supported destination
// types: *int64, *int, *float64, *string, *bool, *time.Time,
// *types.Value and *any.
func (r *Rows) Scan(dest ...any) error {
	if r.cur == nil {
		return fmt.Errorf("dyntables: Scan called without a successful Next")
	}
	if len(dest) != len(r.cur) {
		return fmt.Errorf("dyntables: Scan expects %d destinations, got %d", len(r.cur), len(dest))
	}
	for i, d := range dest {
		if err := scanValue(r.cur[i], d); err != nil {
			return fmt.Errorf("dyntables: Scan column %d (%s): %w", i, r.cols[i], err)
		}
	}
	return nil
}

// Err returns the error that terminated iteration, if any; context
// cancellation surfaces as the context's error.
func (r *Rows) Err() error { return r.err }

// Close releases the cursor. It is idempotent and safe to call at any
// point of the iteration.
func (r *Rows) Close() error {
	r.release()
	return nil
}

func (r *Rows) release() {
	if r.released {
		return
	}
	r.released = true
	r.it.Close()
	if r.unpin != nil {
		r.unpin()
	}
	r.eng.cursors.Add(-1)
	if r.sess == nil {
		return
	}
	status, errText := "SUCCESS", ""
	if r.err != nil {
		errText = r.err.Error()
		if errors.Is(r.err, context.Canceled) || errors.Is(r.err, context.DeadlineExceeded) {
			status = "CANCELED"
		} else {
			status = "ERROR"
		}
	}
	r.root.SetAttr("status", status)
	r.eng.trc.FinishRoot(r.root)
	r.eng.rec.RecordStatement(obs.StatementEvent{
		SessionID: r.sess.id, Role: r.sess.Role(), Text: r.text, Kind: "SELECT",
		Status: status, Rows: r.served, Start: r.start, Duration: time.Since(r.start),
		RootID: r.root.RootID(), Error: errText,
	})
}

// Seq adapts the cursor to a Go 1.23 range-over-func iterator. Each
// iteration yields a row and a nil error; a terminal error (including
// context cancellation) is yielded once with a nil row. The cursor is
// closed when the loop exits.
func (r *Rows) Seq() iter.Seq2[types.Row, error] {
	return func(yield func(types.Row, error) bool) {
		defer r.Close()
		for r.Next() {
			if !yield(r.cur, nil) {
				return
			}
		}
		if r.err != nil {
			yield(nil, r.err)
		}
	}
}

// unwrapValue converts a SQL value to its natural Go representation.
func unwrapValue(v types.Value) any {
	switch v.Kind() {
	case types.KindNull:
		return nil
	case types.KindInt:
		return v.Int()
	case types.KindFloat:
		return v.Float()
	case types.KindString:
		return v.Str()
	case types.KindBool:
		return v.Bool()
	case types.KindTimestamp:
		return v.Time()
	case types.KindInterval:
		return v.Interval()
	case types.KindVariant:
		return v.Variant()
	default:
		return v
	}
}

// scanValue converts a SQL value into a Go destination pointer.
func scanValue(v types.Value, dest any) error {
	switch d := dest.(type) {
	case *types.Value:
		*d = v
		return nil
	case *any:
		*d = unwrapValue(v)
		return nil
	}
	if v.IsNull() {
		return fmt.Errorf("cannot scan NULL into %T (use *types.Value or *any)", dest)
	}
	switch d := dest.(type) {
	case *int64:
		c, err := types.Cast(v, types.KindInt)
		if err != nil {
			return err
		}
		*d = c.Int()
	case *int:
		c, err := types.Cast(v, types.KindInt)
		if err != nil {
			return err
		}
		*d = int(c.Int())
	case *float64:
		c, err := types.Cast(v, types.KindFloat)
		if err != nil {
			return err
		}
		*d = c.Float()
	case *string:
		c, err := types.Cast(v, types.KindString)
		if err != nil {
			return err
		}
		*d = c.Str()
	case *bool:
		c, err := types.Cast(v, types.KindBool)
		if err != nil {
			return err
		}
		*d = c.Bool()
	case *time.Time:
		c, err := types.Cast(v, types.KindTimestamp)
		if err != nil {
			return err
		}
		*d = c.Time()
	default:
		return fmt.Errorf("unsupported Scan destination %T", dest)
	}
	return nil
}

package dyntables

// Benchmarks regenerating every figure and table of the paper's evaluation
// (DESIGN.md §3). Each benchmark runs the corresponding experiment and
// reports the headline metrics alongside timing, so
// `go test -bench=. -benchmem` reproduces the paper's results table by
// table. Shape assertions live in experiments_test.go; the benchmarks
// report the numbers.

import (
	"fmt"
	"testing"
	"time"

	"dyntables/internal/core"
	"dyntables/internal/isolation"
	"dyntables/internal/workload"
)

// BenchmarkFigure1PersistedTableSemantics builds the Figure 1 history and
// analyzes it: the DSG must be acyclic (anomaly masked).
func BenchmarkFigure1PersistedTableSemantics(b *testing.B) {
	for i := 0; i < b.N; i++ {
		h := isolation.NewHistory()
		_ = h.Write(1, "x", 1)
		h.Commit(1)
		_ = h.Read(3, "x", 1)
		_ = h.Write(3, "y", 3)
		h.Commit(3)
		_ = h.Write(2, "x", 2)
		h.Commit(2)
		_ = h.Read(4, "x", 2)
		_ = h.Write(4, "y", 4)
		h.Commit(4)
		_ = h.Read(5, "y", 3)
		_ = h.Read(5, "x", 2)
		h.Commit(5)
		p := h.Analyze()
		if p.G2 {
			b.Fatal("Figure 1 must be acyclic")
		}
	}
}

// BenchmarkFigure2DerivationDSG builds the Figure 2 history: derivations
// must expose the G2 cycle.
func BenchmarkFigure2DerivationDSG(b *testing.B) {
	for i := 0; i < b.N; i++ {
		h := isolation.NewHistory()
		_ = h.Write(1, "x", 1)
		h.Commit(1)
		_ = h.Derive(3, "y", 3, isolation.V("x", 1))
		h.Commit(3)
		_ = h.Write(2, "x", 2)
		h.Commit(2)
		_ = h.Derive(4, "y", 4, isolation.V("x", 2))
		h.Commit(4)
		_ = h.Read(5, "y", 3)
		_ = h.Read(5, "x", 2)
		h.Commit(5)
		p := h.Analyze()
		if !p.G2 || !p.GSingle {
			b.Fatal("Figure 2 must exhibit G2/G-single")
		}
	}
}

// BenchmarkFigure4LagSawtooth simulates the lag sawtooth and reports the
// worst observed peak lag against the target.
func BenchmarkFigure4LagSawtooth(b *testing.B) {
	target := 10 * time.Minute
	for i := 0; i < b.N; i++ {
		res, err := RunLagSawtooth(target, 1)
		if err != nil {
			b.Fatal(err)
		}
		var worst time.Duration
		for _, p := range res.Points[1:] {
			if p.PeakLag > worst {
				worst = p.PeakLag
			}
		}
		b.ReportMetric(worst.Seconds(), "peak-lag-s")
		b.ReportMetric(target.Seconds(), "target-lag-s")
		b.ReportMetric(float64(len(res.Points)), "commits")
	}
}

// benchFleet runs the shared fleet simulation once per benchmark run and
// caches the result (the population statistics are deterministic per
// seed).
var fleetCache *FleetResult

func benchFleet(b *testing.B) *FleetResult {
	b.Helper()
	if fleetCache == nil {
		cfg := DefaultFleetConfig
		cfg.DTs = 40
		cfg.Hours = 4
		res, err := RunFleet(cfg)
		if err != nil {
			b.Fatal(err)
		}
		fleetCache = res
	}
	return fleetCache
}

// BenchmarkFigure5TargetLagDistribution reports the lag-bucket shares of
// the simulated fleet.
func BenchmarkFigure5TargetLagDistribution(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := benchFleet(b)
		b.ReportMetric(workload.LagShare(res.Lags, 0, 5*time.Minute)*100, "pct-under-5m")
		b.ReportMetric(workload.LagShare(res.Lags, 5*time.Minute, 16*time.Hour)*100, "pct-middle")
		b.ReportMetric(workload.LagShare(res.Lags, 16*time.Hour, 1<<62)*100, "pct-over-16h")
	}
}

// BenchmarkFigure6OperatorFrequency reports the operator mix of the
// fleet's defining queries and the incremental-mode share.
func BenchmarkFigure6OperatorFrequency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := benchFleet(b)
		total := float64(res.Created)
		b.ReportMetric(float64(res.OperatorCounts["InnerJoin"]+res.OperatorCounts["OuterJoin"])/total*100, "pct-join")
		b.ReportMetric(float64(res.OperatorCounts["Aggregate"])/total*100, "pct-aggregate")
		b.ReportMetric(float64(res.OperatorCounts["Window"])/total*100, "pct-window")
		b.ReportMetric(res.IncrementalModeShare*100, "pct-incremental-mode")
	}
}

// BenchmarkRefreshActionMix reports the §6.3 refresh-action shares.
func BenchmarkRefreshActionMix(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := benchFleet(b)
		b.ReportMetric(res.ActionShare(core.ActionNoData)*100, "pct-no-data")
		b.ReportMetric(res.ActionShare(core.ActionIncremental)*100, "pct-incremental")
		b.ReportMetric(res.ActionShare(core.ActionFull)*100, "pct-full")
	}
}

// BenchmarkChangedRowFraction reports the §6.3 change-volume buckets.
func BenchmarkChangedRowFraction(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := benchFleet(b)
		b.ReportMetric(res.ChangeFractionShare(0, 0.01)*100, "pct-under-1pct")
		b.ReportMetric(res.ChangeFractionShare(0.01, 0.10)*100, "pct-1-10pct")
		b.ReportMetric(res.ChangeFractionShare(0.10, 1e18)*100, "pct-over-10pct")
	}
}

// BenchmarkIncrementalVsFullCrossover sweeps churn fractions and reports
// the crossover point where full refresh work matches incremental.
func BenchmarkIncrementalVsFullCrossover(b *testing.B) {
	fractions := []float64{0.01, 0.10, 0.50, 1.0}
	for i := 0; i < b.N; i++ {
		points, err := RunCrossover(2000, fractions)
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range points {
			ratio := float64(p.FullWork) / float64(p.IncrementalWork)
			b.ReportMetric(ratio, fmt.Sprintf("full/incr@%.0f%%", p.ChurnFraction*100))
		}
	}
}

// BenchmarkInitializationStrategy reports refresh counts for chained
// creation under both strategies at depth 6.
func BenchmarkInitializationStrategy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := RunInitStrategy(6)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.ReuseCount), "refreshes-reuse")
		b.ReportMetric(float64(res.NaiveCount), "refreshes-naive")
	}
}

// BenchmarkSkipCatchUp reports work saved by skip-on-overlap scheduling.
func BenchmarkSkipCatchUp(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := RunSkipExperiment(1)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.WithSkips.Skips), "skips")
		b.ReportMetric(res.WithSkips.Billed.Seconds(), "billed-s-with-skips")
		b.ReportMetric(res.WithoutSkips.Billed.Seconds(), "billed-s-without")
	}
}

// BenchmarkCanonicalPeriodAlignment reports upstream repair refreshes
// under canonical vs exact periods.
func BenchmarkCanonicalPeriodAlignment(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := RunAlignment(2)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.CanonicalExtraRefreshes), "repairs-canonical")
		b.ReportMetric(float64(res.ExactExtraRefreshes), "repairs-exact")
	}
}

// BenchmarkOuterJoinDerivative reports subplan differentiation counts for
// 4 nested LEFT JOINs under both strategies.
func BenchmarkOuterJoinDerivative(b *testing.B) {
	for i := 0; i < b.N; i++ {
		points, err := RunOuterJoinAblation(4)
		if err != nil {
			b.Fatal(err)
		}
		last := points[len(points)-1]
		b.ReportMetric(float64(last.DirectSubplans), "subplans-direct@4joins")
		b.ReportMetric(float64(last.ExpandedSubplans), "subplans-expanded@4joins")
	}
}

// BenchmarkWindowDerivative reports partitions recomputed when 2 of 128
// partitions change.
func BenchmarkWindowDerivative(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := RunWindowAblation(128, 2)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.ChangedRecomputed), "partitions-changed-strategy")
		b.ReportMetric(float64(res.FullRecomputed), "partitions-full-recompute")
	}
}

// BenchmarkDVSOracle runs the §6.1 randomized property test.
func BenchmarkDVSOracle(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := RunDVSOracle(10, 3, int64(i)+1)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Violations) > 0 {
			b.Fatalf("DVS violations: %v", res.Violations)
		}
		b.ReportMetric(float64(res.Checks), "dvs-checks")
	}
}

// ---------------------------------------------------------------------------
// engine micro-benchmarks (throughput context for the experiment numbers)
// ---------------------------------------------------------------------------

// BenchmarkIncrementalRefreshSmallDelta measures one incremental refresh
// of an aggregation DT after a single-row change in a 10k-row source.
func BenchmarkIncrementalRefreshSmallDelta(b *testing.B) {
	e := New()
	e.MustExec(`CREATE WAREHOUSE wh`)
	e.MustExec(`CREATE TABLE src (k INT, v INT)`)
	batch := ""
	for i := 0; i < 10000; i++ {
		if batch != "" {
			batch += ", "
		}
		batch += fmt.Sprintf("(%d, %d)", i, i%500)
		if (i+1)%500 == 0 {
			e.MustExec(`INSERT INTO src VALUES ` + batch)
			batch = ""
		}
	}
	e.MustExec(`CREATE DYNAMIC TABLE d TARGET_LAG = '1 hour' WAREHOUSE = wh
	            AS SELECT v, count(*) c, sum(k) s FROM src GROUP BY v`)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.MustExec(fmt.Sprintf(`INSERT INTO src VALUES (%d, %d)`, 20000+i, i%500))
		e.AdvanceTime(time.Minute)
		if err := e.ManualRefresh("d"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFullRefresh10k measures a full recompute of the same DT shape.
func BenchmarkFullRefresh10k(b *testing.B) {
	e := New()
	e.MustExec(`CREATE WAREHOUSE wh`)
	e.MustExec(`CREATE TABLE src (k INT, v INT)`)
	batch := ""
	for i := 0; i < 10000; i++ {
		if batch != "" {
			batch += ", "
		}
		batch += fmt.Sprintf("(%d, %d)", i, i%500)
		if (i+1)%500 == 0 {
			e.MustExec(`INSERT INTO src VALUES ` + batch)
			batch = ""
		}
	}
	e.MustExec(`CREATE DYNAMIC TABLE d TARGET_LAG = '1 hour' WAREHOUSE = wh REFRESH_MODE = FULL
	            AS SELECT v, count(*) c, sum(k) s FROM src GROUP BY v`)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.MustExec(fmt.Sprintf(`INSERT INTO src VALUES (%d, %d)`, 20000+i, i%500))
		e.AdvanceTime(time.Minute)
		if err := e.ManualRefresh("d"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkQueryThroughJoin measures ad-hoc query latency over the engine.
func BenchmarkQueryThroughJoin(b *testing.B) {
	e := New()
	e.MustExec(`CREATE WAREHOUSE wh`)
	e.MustExec(`CREATE TABLE l (k INT, v INT)`)
	e.MustExec(`CREATE TABLE r (k INT, w INT)`)
	for i := 0; i < 1000; i += 500 {
		batch := ""
		for j := i; j < i+500; j++ {
			if batch != "" {
				batch += ", "
			}
			batch += fmt.Sprintf("(%d, %d)", j, j%37)
		}
		e.MustExec(`INSERT INTO l VALUES ` + batch)
		e.MustExec(`INSERT INTO r VALUES ` + batch)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Query(`SELECT l.k, r.w FROM l JOIN r ON l.k = r.k WHERE l.v < 10`); err != nil {
			b.Fatal(err)
		}
	}
}

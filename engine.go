// Package dyntables is an embedded analytical database with Dynamic
// Tables: declarative, incrementally maintained materialized tables with
// delayed view semantics, as described in "Streaming Democratized: Ease
// Across the Latency Spectrum with Delayed View Semantics and Snowflake
// Dynamic Tables" (SIGMOD-Companion 2025).
//
// The engine executes a SQL dialect covering DDL (CREATE [OR REPLACE]
// [DYNAMIC] TABLE / VIEW / WAREHOUSE, DROP/UNDROP, ALTER), DML (INSERT,
// UPDATE, DELETE) and queries (SELECT with joins, grouped aggregation,
// window functions, UNION ALL, LATERAL FLATTEN and variant path access).
// Dynamic tables refresh automatically under a target lag via the
// scheduler, incrementally when the defining query is incrementalizable.
//
// Work happens through sessions, which carry per-session state (role,
// bind parameters) and are cheap to create — one per goroutine, one per
// request, as needed. An Engine is safe for concurrent use across
// sessions: queries and DML run in parallel, serializing against DDL
// only. A quickstart:
//
//	eng := dyntables.New()
//	sess := eng.NewSession()
//	ctx := context.Background()
//	sess.MustExec(`CREATE TABLE events (id INT, payload VARIANT)`)
//	sess.MustExec(`CREATE WAREHOUSE wh`)
//	sess.MustExec(`CREATE DYNAMIC TABLE totals TARGET_LAG = '1 minute' WAREHOUSE = wh
//	               AS SELECT id, count(*) c FROM events GROUP BY id`)
//	sess.ExecContext(ctx, `INSERT INTO events VALUES (?, ?)`, 1, `{"x": 1}`)
//	eng.AdvanceTime(2 * time.Minute)
//	eng.RunScheduler()
//	rows, _ := sess.QueryContext(ctx, `SELECT * FROM totals WHERE id = :id`,
//	                             dyntables.Named("id", 1))
//	defer rows.Close()
//	for rows.Next() {
//	    var id, c int64
//	    rows.Scan(&id, &c)
//	}
//
// Statements take `?` (positional) and `:name` (named) placeholders;
// Prepare parses once for repeated execution. QueryContext returns a
// streaming Rows cursor that honors context cancellation mid-scan. The
// Engine-level Exec/Query/MustExec helpers remain as thin wrappers over a
// default session.
//
// By default the engine runs on a deterministic virtual clock advanced
// with AdvanceTime; pass WithWallClock to track real time instead.
package dyntables

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"dyntables/internal/adaptive"
	"dyntables/internal/alert"
	"dyntables/internal/catalog"
	"dyntables/internal/clock"
	"dyntables/internal/core"
	"dyntables/internal/health"
	"dyntables/internal/obs"
	"dyntables/internal/plan"
	"dyntables/internal/refresher"
	"dyntables/internal/sched"
	"dyntables/internal/storage"
	"dyntables/internal/trace"
	"dyntables/internal/txn"
	"dyntables/internal/warehouse"
)

// DefaultOrigin is the virtual clock's start time.
var DefaultOrigin = time.Date(2025, 4, 1, 0, 0, 0, 0, time.UTC)

// Engine is an embedded database instance. Engines are safe for
// concurrent use: create one Session per goroutine with NewSession and
// issue statements through it. Queries and DML from different sessions
// run in parallel; DDL takes an exclusive statement lock so readers never
// observe half-applied catalog changes.
type Engine struct {
	vclk  *clock.Virtual
	clk   clock.Clock
	txns  *txn.Manager
	cat   *catalog.Catalog
	ctrl  *core.Controller
	pool  *warehouse.Pool
	sch   *sched.Scheduler
	refr  *refresher.Refresher
	model warehouse.CostModel
	cfg   Config
	// rec is the observability recorder (bounded refresh/graph/lag/
	// metering history rings); virt layers INFORMATION_SCHEMA virtual
	// tables over the catalog resolver so the recorder is queryable
	// through the normal planner.
	rec  *obs.Recorder
	virt *plan.VirtualResolver
	// trc is the execution-span recorder behind
	// INFORMATION_SCHEMA.TRACE_SPANS: statements, refreshes, scheduler
	// ticks and checkpoints each publish one bounded root trace.
	trc *trace.Recorder
	// startedAt is the host wall-clock construction instant, for /metrics
	// and /v1/status uptime.
	startedAt time.Time
	// sessSeq assigns engine-unique session IDs for QUERY_HISTORY.
	sessSeq atomic.Int64
	// schPhase is the account-wide canonical-period phase (§5.2).
	schPhase time.Duration

	// stmtMu serializes DDL (writers) against queries, DML and refreshes
	// (readers); parallel readers proceed without blocking one another.
	stmtMu sync.RWMutex
	// def is the default session backing the legacy Engine-level
	// Exec/Query/SetRole helpers.
	def *Session
	// cursors counts open Rows cursors, for leak detection.
	cursors atomic.Int64

	// healthMu guards healthPrev, the per-DT status the last health
	// evaluation produced — the evaluator's flapping-hysteresis memory.
	healthMu   sync.Mutex
	healthPrev map[string]health.Status

	// alertMu guards the watchdog registry: declared alerts plus their
	// firing/resolved evaluation state. Alert conditions evaluate through
	// ordinary sessions (statement readers), so the registry has its own
	// small lock instead of riding stmtMu.
	alertMu sync.Mutex
	alerts  map[string]*alertEntry
	// alertNotifier delivers webhook actions; tests swap its Post hook
	// via SetWebhookPoster.
	alertNotifier *alert.Notifier

	// compactionHorizon is the live COMPACTION_HORIZON setting (see
	// Config.CompactionHorizon). Written under the exclusive statement
	// lock (construction, ALTER SYSTEM); read by the compaction sweep,
	// which also holds it exclusively.
	compactionHorizon int

	// pers is the durability layer; nil for in-memory engines (New).
	pers *persister
	// checkpointEvery is the WAL-record count that triggers a snapshot
	// checkpoint.
	checkpointEvery int
	// closed marks a closed engine; statements fail afterwards.
	closed atomic.Bool
	// sessions tracks live sessions so Close can invalidate their
	// prepared statements.
	sessMu   sync.Mutex
	sessions map[*Session]struct{}
}

// Config bundles the engine's execution tuning knobs. The zero value
// reproduces the classic fully serial engine.
type Config struct {
	// RefreshWorkers is the width of the scheduler's refresh worker
	// pool: how many DT refreshes of one dependency wave execute
	// concurrently, and how many concurrency slots each warehouse
	// offers the cost model. 0 (or 1) runs refreshes serially — the
	// deterministic default — and a negative value derives the width
	// from the host (GOMAXPROCS). Adjustable at runtime with
	// `ALTER SYSTEM SET REFRESH_WORKERS = n`.
	RefreshWorkers int
	// DeltaParallelism bounds concurrent subplan evaluations inside a
	// single incremental refresh: the two sides of a join delta, union
	// branches and boundary snapshots evaluate in parallel when > 1.
	// 0 (or 1) differentiates sequentially. Adjustable at runtime with
	// `ALTER SYSTEM SET DELTA_PARALLELISM = n`.
	DeltaParallelism int
	// HistoryCapacity bounds the observability subsystem's history
	// rings: per-DT refresh history (both the in-engine ring behind
	// Describe and the queryable INFORMATION_SCHEMA ring), per-DT lag
	// samples, per-warehouse metering and the graph-edge log. 0 uses the
	// default (1024 events per ring); a negative value disables
	// observability recording entirely (overhead baselines).
	// `ALTER SYSTEM SET HISTORY_CAPACITY = n` rebounds the rings at
	// runtime and re-enables recording on a disabled engine.
	HistoryCapacity int
	// AdaptiveWindow configures the per-refresh REFRESH_MODE=AUTO
	// chooser (§3.3.2): 0 (the default) enables it with the default
	// smoothing window, n > 1 enables it with window n, and a negative
	// value disables it — AUTO then resolves statically to INCREMENTAL
	// whenever the defining query is incrementalizable, the pre-adaptive
	// behavior. Note the SQL gate uses on/off semantics instead:
	// `ALTER SYSTEM SET ADAPTIVE_REFRESH = 0` disables, `= 1` enables,
	// `= n` (n > 1) enables with window n.
	AdaptiveWindow int
	// DisableColumnar turns off the columnar execution fast path: queries
	// and refresh boundary snapshots fall back to row-at-a-time
	// execution everywhere. The zero value (columnar enabled) is the
	// default; results are byte-identical either way — the differential
	// harness enforces it — so the switch exists for A/B measurement and
	// as an escape hatch. Adjustable at runtime with
	// `ALTER SYSTEM SET COLUMNAR = 0|1`.
	DisableColumnar bool
	// CompactionHorizon, when > 0, keeps only the last N versions of
	// every storage table readable: the scheduler's compaction sweep
	// folds older change sets into a materialized snapshot at the
	// horizon. The sweep never folds past a pinned version (an open
	// cursor) or a registered DT's refresh frontier. 0 (the default)
	// disables compaction and preserves unbounded time travel.
	// Adjustable at runtime with `ALTER SYSTEM SET COMPACTION_HORIZON = n`.
	CompactionHorizon int
}

// resolveWorkers maps the RefreshWorkers config to a concrete pool
// width: 0 means serial, negative means host-derived.
func (c Config) resolveWorkers() int {
	switch {
	case c.RefreshWorkers == 0:
		return 1
	case c.RefreshWorkers < 0:
		return 0 // refresher.New derives from GOMAXPROCS
	default:
		return c.RefreshWorkers
	}
}

// Option configures an Engine.
type Option func(*Engine)

// WithConfig applies execution tuning (refresh worker-pool width, delta
// parallelism).
func WithConfig(cfg Config) Option {
	return func(e *Engine) { e.cfg = cfg }
}

// WithWallClock runs the engine against real time instead of the virtual
// clock (AdvanceTime becomes a no-op).
func WithWallClock() Option {
	return func(e *Engine) {
		e.vclk = nil
		e.clk = clock.Wall{}
	}
}

// WithOrigin sets the virtual clock's start time.
func WithOrigin(t time.Time) Option {
	return func(e *Engine) {
		if e.vclk != nil {
			e.vclk = clock.NewVirtual(t)
			e.clk = e.vclk
		}
	}
}

// WithCostModel overrides the refresh cost model used for warehouse
// simulation.
func WithCostModel(m warehouse.CostModel) Option {
	return func(e *Engine) { e.model = m }
}

// WithSchedulerPhase sets the account-wide phase for canonical refresh
// periods (§5.2).
func WithSchedulerPhase(d time.Duration) Option {
	return func(e *Engine) { e.schPhase = d }
}

// WithCheckpointEvery sets how many WAL records may accumulate before a
// durable engine takes a snapshot checkpoint (default
// DefaultCheckpointEvery). Smaller values bound recovery time at the cost
// of more frequent full-state snapshots. Only meaningful with Open.
func WithCheckpointEvery(n int) Option {
	return func(e *Engine) {
		if n > 0 {
			e.checkpointEvery = n
		}
	}
}

// New creates an engine.
func New(opts ...Option) *Engine {
	e := &Engine{
		model:           warehouse.DefaultCostModel,
		checkpointEvery: DefaultCheckpointEvery,
		sessions:        make(map[*Session]struct{}),
		startedAt:       time.Now(),
		alerts:          make(map[string]*alertEntry),
		alertNotifier:   &alert.Notifier{},
	}
	e.vclk = clock.NewVirtual(DefaultOrigin)
	e.clk = e.vclk
	for _, opt := range opts {
		opt(e)
	}
	e.txns = txn.NewManager(e.clk)
	e.cat = catalog.New()
	// The controller binds against the catalog-only resolver, not the
	// virtual-table layer: defining queries may not read
	// INFORMATION_SCHEMA (directly or through a view), and a refresh
	// bind that materialized a virtual table would call back into the
	// scheduler from under its own tick lock.
	e.ctrl = core.NewController(e.txns, plan.ResolverFunc(e.resolveCatalogTable), func(entryID int64) (int64, error) {
		entry, err := e.cat.GetByID(entryID)
		if err != nil {
			return 0, err
		}
		return entry.Generation, nil
	})
	vclk := e.vclk
	if vclk == nil {
		// The scheduler needs a virtual clock; under a wall clock it gets
		// its own mirror advanced on demand.
		vclk = clock.NewVirtual(e.clk.Now())
	}
	e.pool = warehouse.NewPool()
	e.ctrl.DeltaParallelism = e.cfg.DeltaParallelism
	e.ctrl.Columnar = !e.cfg.DisableColumnar
	if e.cfg.CompactionHorizon > 0 {
		e.compactionHorizon = e.cfg.CompactionHorizon
	}
	adaptiveWindow := 0
	if e.cfg.AdaptiveWindow > 1 {
		adaptiveWindow = e.cfg.AdaptiveWindow
	}
	e.ctrl.Adaptive = adaptive.New(adaptive.Config{Window: adaptiveWindow})
	if e.cfg.AdaptiveWindow < 0 {
		e.ctrl.Adaptive.SetEnabled(false)
	}
	e.refr = refresher.New(e.ctrl, e.pool, e.model, e.cfg.resolveWorkers())
	e.sch = sched.New(vclk, e.ctrl, e.pool, e.model, e.clk.Now(), e.schPhase)
	e.sch.SetRefresher(e.refr)
	e.initObservability()
	e.def = e.NewSession()
	return e
}

// Refresher exposes the refresh-execution backend (worker-pool width,
// quiesce control).
func (e *Engine) Refresher() *refresher.Refresher { return e.refr }

// Tracer exposes the execution-span recorder behind
// INFORMATION_SCHEMA.TRACE_SPANS, for Go-side monitoring and benchmarks.
func (e *Engine) Tracer() *trace.Recorder { return e.trc }

// Uptime is the host wall-clock time since the engine was constructed.
func (e *Engine) Uptime() time.Duration { return time.Since(e.startedAt) }

// SessionCount reports how many sessions are currently open.
func (e *Engine) SessionCount() int {
	e.sessMu.Lock()
	defer e.sessMu.Unlock()
	return len(e.sessions)
}

// PersistStats returns the durability layer's counters; ok is false for
// in-memory engines.
func (e *Engine) PersistStats() (PersistStats, bool) {
	if e.pers == nil {
		return PersistStats{}, false
	}
	return e.pers.Stats(), true
}

// RefreshWorkers returns the current refresh worker-pool width.
func (e *Engine) RefreshWorkers() int { return e.refr.Workers() }

// DeltaParallelism returns the per-refresh differentiation parallelism.
func (e *Engine) DeltaParallelism() int {
	e.stmtMu.RLock()
	defer e.stmtMu.RUnlock()
	return e.ctrl.DeltaParallelism
}

// AdaptiveChooser exposes the REFRESH_MODE=AUTO chooser (runtime gate,
// smoothing window) for experiments and monitoring.
func (e *Engine) AdaptiveChooser() *adaptive.Chooser { return e.ctrl.Adaptive }

// Columnar reports whether the columnar execution fast path is enabled.
func (e *Engine) Columnar() bool {
	e.stmtMu.RLock()
	defer e.stmtMu.RUnlock()
	return e.ctrl.Columnar
}

// CompactionHorizon returns the live COMPACTION_HORIZON setting: the
// number of trailing versions kept readable per table, or 0 when
// compaction is disabled.
func (e *Engine) CompactionHorizon() int {
	e.stmtMu.RLock()
	defer e.stmtMu.RUnlock()
	return e.compactionHorizon
}

// CompactNow runs one version-chain compaction sweep immediately: every
// storage table (base tables and DT contents) is folded down to the last
// COMPACTION_HORIZON versions, clamped so no pinned version (an open
// cursor's snapshot) and no registered DT's refresh frontier is folded
// away. It returns the total number of versions folded. A sweep runs
// automatically after every scheduler tick; this entry point exists for
// tests and operational tooling. With COMPACTION_HORIZON = 0 it is a
// no-op.
func (e *Engine) CompactNow() (int64, error) {
	if err := e.checkOpen(); err != nil {
		return 0, err
	}
	// The sweep is a statement writer: it mutates version chains, so it
	// excludes queries, DML and refreshes the way DDL does. Cursor pins
	// are taken under the read lock at plan time, so every cursor opened
	// before the sweep acquired this lock is already protected.
	e.stmtMu.Lock()
	defer e.stmtMu.Unlock()
	return e.compactLocked()
}

func (e *Engine) compactLocked() (int64, error) {
	n := e.compactionHorizon
	if n <= 0 {
		return 0, nil
	}
	floors := e.ctrl.FrontierFloors()
	var total int64
	for _, t := range e.allStorageTables() {
		latest := int64(t.VersionCount())
		h := latest - int64(n) + 1
		if f, ok := floors[t.ID()]; ok && h > f {
			// A registered DT's next refresh reads Changes starting at its
			// frontier seq; folding past it would force a REINITIALIZE.
			h = f
		}
		if h <= t.CompactedThrough()+1 {
			continue
		}
		eff, dropped, err := t.Compact(h)
		if err != nil {
			return total, err
		}
		if dropped > 0 {
			total += dropped
			e.logCompact(t, eff)
		}
	}
	return total, nil
}

// allStorageTables enumerates the version-chain owners the compaction
// sweep visits: live base tables and DT contents tables.
func (e *Engine) allStorageTables() []*storage.Table {
	var out []*storage.Table
	for _, entry := range e.cat.List(catalog.KindTable) {
		if to, ok := entry.Payload.(*tableObject); ok {
			out = append(out, to.table)
		}
	}
	for _, entry := range e.cat.List(catalog.KindDynamicTable) {
		if dt, ok := entry.Payload.(*core.DynamicTable); ok {
			out = append(out, dt.Storage)
		}
	}
	return out
}

// Now returns the engine's current time.
func (e *Engine) Now() time.Time { return e.clk.Now() }

// AdvanceTime moves the virtual clock forward. It is a no-op under
// WithWallClock.
func (e *Engine) AdvanceTime(d time.Duration) time.Time {
	if e.vclk != nil {
		t := e.vclk.Advance(d)
		e.logClock()
		return t
	}
	return e.clk.Now()
}

// Scheduler exposes the refresh scheduler for simulations and experiments.
func (e *Engine) Scheduler() *sched.Scheduler { return e.sch }

// Controller exposes the refresh controller (ablation knobs, experiments).
func (e *Engine) Controller() *core.Controller { return e.ctrl }

// Warehouses exposes the warehouse pool (billing inspection).
func (e *Engine) Warehouses() *warehouse.Pool { return e.pool }

// Catalog exposes the catalog (RBAC administration, DDL log).
func (e *Engine) Catalog() *catalog.Catalog { return e.cat }

// RunScheduler runs scheduled refreshes up to the current time. Refreshes
// run as statement readers: they proceed in parallel with queries and DML
// but serialize against DDL.
func (e *Engine) RunScheduler() error {
	if err := e.checkOpen(); err != nil {
		return err
	}
	e.stmtMu.RLock()
	err := e.checkOpen()
	if err == nil {
		err = e.sch.RunUntil(e.clk.Now())
	}
	if err == nil {
		e.logClock()
	}
	e.stmtMu.RUnlock()
	// The compaction sweep runs after the tick lock is released — it
	// needs the exclusive statement lock — so version chains are trimmed
	// right after the refreshes that advanced the frontiers past them.
	if err == nil {
		_, err = e.CompactNow()
	}
	// The watchdog runs after the tick lock is released: alert conditions
	// evaluate through ordinary sessions, which take their own statement
	// read locks.
	e.evaluateAlerts()
	e.afterWrite()
	return err
}

// SetRole switches the role of the engine's default session.
//
// Deprecated: roles are per-session state; use NewSession and
// Session.SetRole so concurrent sessions can hold different roles.
func (e *Engine) SetRole(role string) { e.def.SetRole(role) }

// Role returns the default session's role.
//
// Deprecated: use Session.Role.
func (e *Engine) Role() string { return e.def.Role() }

// OpenCursors reports the number of Rows cursors not yet released, for
// leak detection in tests and monitoring.
func (e *Engine) OpenCursors() int64 { return e.cursors.Load() }

// ---------------------------------------------------------------------------
// catalog payloads
// ---------------------------------------------------------------------------

type tableObject struct {
	table *storage.Table
}

func (*tableObject) ObjectKind() catalog.ObjectKind { return catalog.KindTable }

type viewObject struct {
	text string
}

func (*viewObject) ObjectKind() catalog.ObjectKind { return catalog.KindView }

type warehouseObject struct {
	wh *warehouse.Warehouse
}

func (*warehouseObject) ObjectKind() catalog.ObjectKind { return catalog.KindWarehouse }

// ResolveTable implements plan.Resolver: INFORMATION_SCHEMA virtual
// tables resolve through the observability layer, everything else
// against the catalog.
func (e *Engine) ResolveTable(name string) (*plan.Source, error) {
	return e.virt.ResolveTable(name)
}

// resolveCatalogTable is the catalog-backed base resolver underneath the
// virtual-table layer. It is also the refresh controller's resolver:
// defining queries (of DTs and of the views they expand) bind here, so
// INFORMATION_SCHEMA never reaches a stored query — virtual tables are
// bind-time snapshots with no version chain, and materializing one from
// a refresh bind would call back into the scheduler under its tick lock.
func (e *Engine) resolveCatalogTable(name string) (*plan.Source, error) {
	entry, err := e.cat.Get(name)
	if err != nil {
		if e.virt != nil && e.virt.Has(name) {
			return nil, fmt.Errorf("dyntables: %s is an INFORMATION_SCHEMA virtual table; stored defining queries may not read it", name)
		}
		return nil, err
	}
	src := &plan.Source{
		EntryID:    entry.ID,
		Generation: entry.Generation,
		Name:       entry.Name,
		Kind:       entry.Kind,
	}
	switch payload := entry.Payload.(type) {
	case *tableObject:
		src.Table = payload.table
	case *viewObject:
		src.ViewSQL = payload.text
	case *core.DynamicTable:
		if !payload.Initialized() {
			return nil, fmt.Errorf("dyntables: dynamic table %q is not initialized yet", name)
		}
		src.Table = payload.Storage
	default:
		return nil, fmt.Errorf("dyntables: object %q is not queryable", name)
	}
	return src, nil
}

// Recluster appends a data-equivalent version to a base table, simulating
// the background clustering/defragmentation maintenance of §5.5.2: storage
// is rewritten but logical contents are unchanged, and incremental readers
// skip the version entirely (downstream DTs take NO_DATA refreshes).
func (e *Engine) Recluster(tableName string) error {
	if err := e.checkOpen(); err != nil {
		return err
	}
	e.stmtMu.RLock()
	err := e.checkOpen()
	if err == nil {
		var table *storage.Table
		_, table, err = e.baseTable(tableName)
		if err == nil {
			_, err = table.AppendDataEquivalent(e.txns.Now())
		}
	}
	e.stmtMu.RUnlock()
	e.afterWrite()
	return err
}

// DynamicTableHandle returns the engine-side state of a DT, used by the
// experiment harness and validation tooling.
func (e *Engine) DynamicTableHandle(name string) (*core.DynamicTable, error) {
	_, dt, err := e.dynamicTable(name)
	return dt, err
}

// dynamicTable resolves a DT payload by name.
func (e *Engine) dynamicTable(name string) (*catalog.Entry, *core.DynamicTable, error) {
	entry, err := e.cat.Get(name)
	if err != nil {
		return nil, nil, err
	}
	dt, ok := entry.Payload.(*core.DynamicTable)
	if !ok {
		return nil, nil, fmt.Errorf("dyntables: %q is not a dynamic table", name)
	}
	return entry, dt, nil
}

// baseTable resolves a plain table payload by name.
func (e *Engine) baseTable(name string) (*catalog.Entry, *storage.Table, error) {
	entry, err := e.cat.Get(name)
	if err != nil {
		return nil, nil, err
	}
	tbl, ok := entry.Payload.(*tableObject)
	if !ok {
		return nil, nil, fmt.Errorf("dyntables: %q is not a base table", name)
	}
	return entry, tbl.table, nil
}

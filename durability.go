package dyntables

import (
	"errors"
	"fmt"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"dyntables/internal/alert"
	"dyntables/internal/catalog"
	"dyntables/internal/core"
	"dyntables/internal/hlc"
	"dyntables/internal/ivm"
	"dyntables/internal/persist"
	"dyntables/internal/sql"
	"dyntables/internal/storage"
	"dyntables/internal/types"
	"dyntables/internal/warehouse"
)

// DefaultCheckpointEvery is how many WAL records may accumulate before a
// durable engine folds them into a snapshot checkpoint.
const DefaultCheckpointEvery = 256

// ErrClosed is returned by operations on a closed engine or session.
var ErrClosed = errors.New("dyntables: engine is closed")

func (e *Engine) checkOpen() error {
	if e.closed.Load() {
		return ErrClosed
	}
	return nil
}

// persister is the engine-side durability glue: it assigns stable table
// keys (process-local storage IDs change across restarts), observes
// storage commits, frontier advances and grants, and appends WAL records
// for them. It also owns checkpoint assembly and WAL replay.
type persister struct {
	eng *Engine
	wal *persist.WAL
	dir string

	mu             sync.Mutex
	keyByStorageID map[int64]int64
	tableByKey     map[int64]*storage.Table
	nextKey        int64
	// err is the first WAL append failure; surfaced at Close/Checkpoint
	// because commit hooks have no error channel.
	err error

	// replaying suppresses record emission while recovery replays the
	// log through the very same engine mutation paths.
	replaying atomic.Bool

	// Durability counters for /metrics and /v1/status: WAL appends with
	// cumulative host time, checkpoints taken, and the wall-clock instant
	// of the last installed checkpoint (0 = never).
	appends        atomic.Int64
	appendNanos    atomic.Int64
	checkpoints    atomic.Int64
	lastCheckpoint atomic.Int64 // unix nanos
}

// PersistStats is a point-in-time durability snapshot: WAL growth and
// append cost, checkpoint count and recency. All fields are gathered
// from lock-free counters, so scraping never blocks commits.
type PersistStats struct {
	// WALRecords and WALBytes describe the live log (since the last
	// checkpoint reset); WALAppendedBytes counts every byte ever appended
	// (monotonic).
	WALRecords       int
	WALBytes         int64
	WALAppendedBytes int64
	// WALAppends counts append calls and WALAppendTime their cumulative
	// host time (fsync-inclusive when the append path syncs).
	WALAppends    int64
	WALAppendTime time.Duration
	// Checkpoints counts installed checkpoints; LastCheckpoint is the
	// wall-clock instant of the newest (zero when none was taken).
	Checkpoints    int64
	LastCheckpoint time.Time
}

// Stats returns the persister's durability counters.
func (p *persister) Stats() PersistStats {
	st := PersistStats{
		WALRecords:       p.wal.Records(),
		WALBytes:         p.wal.Bytes(),
		WALAppendedBytes: p.wal.AppendedBytes(),
		WALAppends:       p.appends.Load(),
		WALAppendTime:    time.Duration(p.appendNanos.Load()),
		Checkpoints:      p.checkpoints.Load(),
	}
	if ns := p.lastCheckpoint.Load(); ns != 0 {
		st.LastCheckpoint = time.Unix(0, ns).UTC()
	}
	return st
}

// registerTable assigns a fresh stable key to a storage table and hooks
// its commit sink.
func (p *persister) registerTable(t *storage.Table) int64 {
	p.mu.Lock()
	p.nextKey++
	key := p.nextKey
	p.keyByStorageID[t.ID()] = key
	p.tableByKey[key] = t
	p.mu.Unlock()
	t.SetCommitSink(p)
	return key
}

// registerRestoredTable installs a recovered table under its original key.
func (p *persister) registerRestoredTable(key int64, t *storage.Table) {
	p.mu.Lock()
	p.keyByStorageID[t.ID()] = key
	p.tableByKey[key] = t
	if key > p.nextKey {
		p.nextKey = key
	}
	p.mu.Unlock()
	t.SetCommitSink(p)
}

// deregisterTable forgets a storage table superseded by CREATE OR
// REPLACE: its chain stops being checkpointed and its commits stop being
// logged (nothing can reference it again — replaced entries have no
// graveyard).
func (p *persister) deregisterTable(t *storage.Table) {
	t.SetCommitSink(nil)
	p.mu.Lock()
	if key, ok := p.keyByStorageID[t.ID()]; ok {
		delete(p.keyByStorageID, t.ID())
		delete(p.tableByKey, key)
	}
	p.mu.Unlock()
}

// deregisterReplacedPayload drops the storage table behind a catalog
// entry that is about to be replaced, if any.
func (e *Engine) deregisterReplacedPayload(name string) {
	if e.pers == nil {
		return
	}
	entry, err := e.cat.Get(name)
	if err != nil {
		return
	}
	switch payload := entry.Payload.(type) {
	case *tableObject:
		e.pers.deregisterTable(payload.table)
	case *core.DynamicTable:
		e.pers.deregisterTable(payload.Storage)
	}
}

func (p *persister) keyOf(storageID int64) (int64, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	key, ok := p.keyByStorageID[storageID]
	return key, ok
}

func (p *persister) table(key int64) (*storage.Table, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	t, ok := p.tableByKey[key]
	return t, ok
}

// append writes a record, capturing the first failure.
func (p *persister) append(rec *persist.Record) {
	if p.replaying.Load() {
		return
	}
	// Appends are counted, not span-recorded: one root trace per WAL
	// record would evict every statement trace from the bounded root
	// ring. The cumulative append time feeds /metrics instead.
	start := time.Now()
	err := p.wal.Append(rec)
	p.appends.Add(1)
	p.appendNanos.Add(time.Since(start).Nanoseconds())
	if err != nil {
		p.mu.Lock()
		if p.err == nil {
			p.err = err
		}
		p.mu.Unlock()
	}
}

// TableCommitted implements storage.CommitSink: every committed version
// becomes a WAL commit record. Called with the table lock held.
func (p *persister) TableCommitted(t *storage.Table, v *storage.Version, schema types.Schema) {
	if p.replaying.Load() {
		return
	}
	key, ok := p.keyOf(t.ID())
	if !ok {
		return // table never registered (not reachable from the catalog)
	}
	rec := &persist.Record{Kind: persist.KindCommit, Commit: &persist.CommitRecord{
		TableKey: key,
		Commit:   v.Commit,
		Schema:   persist.EncodeSchema(schema),
	}}
	switch {
	case v.Overwrite:
		rec.Commit.Kind = persist.CommitOverwrite
		rows, err := persist.EncodeRowMap(v.Snapshot)
		if err != nil {
			p.fail(err)
			return
		}
		rec.Commit.Rows = rows
	case v.DataEquivalent:
		rec.Commit.Kind = persist.CommitDataEquiv
	default:
		rec.Commit.Kind = persist.CommitApply
		changes, err := persist.EncodeChangeSet(v.Changes)
		if err != nil {
			p.fail(err)
			return
		}
		rec.Commit.Changes = changes
	}
	p.append(rec)
}

// FrontierAdvanced implements core.FrontierSink: every refresh completion
// becomes a WAL frontier record keyed by stable table keys.
func (p *persister) FrontierAdvanced(dt *core.DynamicTable, u core.FrontierUpdate) {
	if p.replaying.Load() {
		return
	}
	versions := make(map[int64]int64, len(u.Versions))
	for storageID, seq := range u.Versions {
		if key, ok := p.keyOf(storageID); ok {
			versions[key] = seq
		}
	}
	p.append(&persist.Record{Kind: persist.KindFrontier, Frontier: &persist.FrontierRecord{
		EntryID:           dt.EntryID,
		DataTSMicros:      u.DataTS.UnixMicro(),
		Versions:          versions,
		VersionSeq:        u.VersionSeq,
		Commit:            u.Commit,
		Deps:              u.Deps,
		SchemaFingerprint: u.SchemaFingerprint,
		Initialized:       u.Initialized,
		AdaptiveValid:     u.AdaptiveValid,
		AdaptiveMode:      int(u.AdaptiveMode),
		AdaptiveReason:    u.AdaptiveReason,
	}})
}

// grantChanged implements catalog.GrantSink.
func (p *persister) grantChanged(objectID int64, priv catalog.Privilege, role string, revoked bool) {
	p.append(&persist.Record{Kind: persist.KindGrant, Grant: &persist.GrantRecord{
		ObjectID:  objectID,
		Privilege: int(priv),
		Role:      role,
		Revoked:   revoked,
	}})
}

func (p *persister) fail(err error) {
	p.mu.Lock()
	if p.err == nil {
		p.err = err
	}
	p.mu.Unlock()
}

func (p *persister) firstErr() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.err
}

// ---------------------------------------------------------------------------
// Open / recovery
// ---------------------------------------------------------------------------

// Open creates or recovers a durable engine rooted at dir. An empty or
// missing directory starts a fresh engine whose state survives Close and
// process exit; a directory with a snapshot and/or WAL is recovered by
// loading the snapshot and replaying the log tail (a torn final record
// from a crash is truncated). Recovery restores the catalog, every
// table's full version chain, and each DT's refresh frontier, so the
// next scheduled refresh resumes incrementally — no forced full refresh.
func Open(dir string, opts ...Option) (*Engine, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("dyntables: create data dir: %w", err)
	}
	snap, err := persist.ReadSnapshot(dir)
	if err != nil {
		return nil, err
	}
	afterSeq := int64(0)
	if snap != nil {
		afterSeq = snap.WalSeq
	}
	wal, records, err := persist.OpenWAL(dir, afterSeq)
	if err != nil {
		return nil, err
	}

	if snap != nil {
		// Resume the virtual clock where the previous process left it.
		opts = append([]Option{WithOrigin(time.UnixMicro(snap.NowMicros).UTC()),
			WithSchedulerPhase(time.Duration(snap.PhaseMicros) * time.Microsecond)}, opts...)
	}
	e := New(opts...)
	// Recovery replays the log through the same engine mutation paths a
	// live refresh uses; quiescing the refresher guarantees no scheduled
	// refresh can interleave with replay, even if a caller races
	// RunScheduler against Open's return.
	e.refr.Quiesce()
	defer e.refr.Resume()
	p := &persister{
		eng:            e,
		wal:            wal,
		dir:            dir,
		keyByStorageID: make(map[int64]int64),
		tableByKey:     make(map[int64]*storage.Table),
	}
	p.replaying.Store(true)
	e.pers = p

	if snap != nil {
		if err := e.restoreSnapshot(snap); err != nil {
			wal.Close()
			return nil, err
		}
	}
	for i := range records {
		rec := &records[i]
		if snap != nil && rec.Seq <= snap.WalSeq {
			continue // already folded into the snapshot
		}
		if err := e.replayRecord(rec); err != nil {
			wal.Close()
			return nil, fmt.Errorf("dyntables: replay WAL record %d (%s): %w", rec.Seq, rec.Kind, err)
		}
	}

	// Advance the HLC past every recovered commit so new commits keep
	// ordering forward.
	maxCommit := hlc.Zero
	p.mu.Lock()
	for _, t := range p.tableByKey {
		if c := t.LatestVersion().Commit; maxCommit.Less(c) {
			maxCommit = c
		}
	}
	p.mu.Unlock()
	if !maxCommit.IsZero() {
		e.txns.Clock().Update(maxCommit)
	}

	p.replaying.Store(false)
	e.ctrl.SetFrontierSink(p)
	e.cat.SetGrantSink(p.grantChanged)

	// Re-observe the recovered DT graph: the observability rings are
	// in-memory (not checkpointed), so the graph history restarts from
	// the recovered dependency edges.
	for _, entry := range e.cat.List(catalog.KindDynamicTable) {
		if dt, ok := entry.Payload.(*core.DynamicTable); ok {
			e.recordDTGraph(dt.Name, entry.DependsOn)
		}
	}
	return e, nil
}

// restoreSnapshot installs checkpointed state into a freshly constructed
// engine.
func (e *Engine) restoreSnapshot(snap *persist.Snapshot) error {
	p := e.pers

	// Storage: rebuild every table under its stable key.
	for _, ts := range snap.Tables {
		t, err := persist.DecodeTable(ts)
		if err != nil {
			return err
		}
		p.registerRestoredTable(ts.Key, t)
	}
	if snap.TableSeq > p.nextKey {
		p.nextKey = snap.TableSeq
	}

	// Warehouses: configuration plus billing state.
	for _, ws := range snap.Warehouses {
		wh, err := e.pool.Create(ws.Name, warehouse.Size(ws.Size), time.Duration(ws.AutoSuspend)*time.Microsecond)
		if err != nil {
			return err
		}
		wh.RestoreState(warehouse.State{
			BusyUntil: time.UnixMicro(ws.BusyUntilUS).UTC(),
			EverUsed:  ws.EverUsed,
			Billed:    time.Duration(ws.BilledUS) * time.Microsecond,
			Resumes:   ws.Resumes,
		})
	}

	// Catalog: live entries by ID, then dropped entries in drop order so
	// UNDROP pops the most recently dropped first.
	entries := append([]persist.EntryState(nil), snap.Entries...)
	sort.SliceStable(entries, func(i, j int) bool {
		a, b := entries[i], entries[j]
		if a.Dropped != b.Dropped {
			return !a.Dropped
		}
		if a.Dropped {
			if a.DroppedAt != b.DroppedAt {
				return a.DroppedAt.Less(b.DroppedAt)
			}
		}
		return a.ID < b.ID
	})
	for _, es := range entries {
		entry := &catalog.Entry{
			ID:         es.ID,
			Name:       es.Name,
			Kind:       catalog.ObjectKind(es.Kind),
			Owner:      es.Owner,
			DependsOn:  append([]int64(nil), es.DependsOn...),
			Generation: es.Generation,
			Dropped:    es.Dropped,
			DroppedAt:  es.DroppedAt,
		}
		switch entry.Kind {
		case catalog.KindTable:
			t, ok := p.table(es.TableKey)
			if !ok {
				return fmt.Errorf("dyntables: snapshot entry %s references unknown table key %d", es.Name, es.TableKey)
			}
			entry.Payload = &tableObject{table: t}
		case catalog.KindView:
			entry.Payload = &viewObject{text: es.ViewText}
		case catalog.KindWarehouse:
			wh, err := e.pool.Get(es.Warehouse)
			if err != nil {
				return err
			}
			entry.Payload = &warehouseObject{wh: wh}
		case catalog.KindDynamicTable:
			if es.DT == nil {
				return fmt.Errorf("dyntables: snapshot entry %s has no DT state", es.Name)
			}
			dt, err := e.restoreDT(es.ID, es.DT)
			if err != nil {
				return err
			}
			entry.Payload = dt
		default:
			return fmt.Errorf("dyntables: snapshot entry %s has unknown kind %d", es.Name, es.Kind)
		}
		if err := e.cat.RestoreEntry(entry); err != nil {
			return err
		}
		if dt, ok := entry.Payload.(*core.DynamicTable); ok {
			e.ctrl.Register(dt)
			if !entry.Dropped {
				e.sch.Track(dt)
			}
		}
	}
	e.cat.RestoreCounters(snap.NextCatalogID, snap.DDLSeq)
	ddl := make([]catalog.DDLRecord, len(snap.DDLLog))
	for i, d := range snap.DDLLog {
		ddl[i] = catalog.DDLRecord{Seq: d.Seq, TS: d.TS, Op: d.Op,
			Kind: catalog.ObjectKind(d.Kind), ID: d.ID, Name: d.Name, Detail: d.Detail}
	}
	e.cat.RestoreDDLLog(ddl)
	for _, g := range snap.Grants {
		e.cat.Grant(g.ObjectID, catalog.Privilege(g.Privilege), g.Role)
	}

	// Alerts: watchdog definitions plus evaluation state.
	for _, as := range snap.Alerts {
		s := alertSnap{
			def: alert.Definition{
				Name:          as.Name,
				Owner:         as.Owner,
				Schedule:      time.Duration(as.ScheduleMicros) * time.Microsecond,
				ConditionText: as.ConditionText,
				Action:        alert.ActionKind(as.ActionKind),
				WebhookURL:    as.ActionURL,
				ActionSQL:     as.ActionSQL,
			},
			state: alert.State{
				Status:      alert.Status(as.Status),
				TrueStreak:  as.TrueStreak,
				FalseStreak: as.FalseStreak,
				Firings:     as.Firings,
			},
			suspended: as.Suspended,
		}
		if as.LastFiredMicros != 0 {
			s.state.LastFired = time.UnixMicro(as.LastFiredMicros).UTC()
		}
		if as.NextDueMicros != 0 {
			s.nextDue = time.UnixMicro(as.NextDueMicros).UTC()
		}
		e.installAlert(s)
	}

	// Scheduler cadence: keep the original epoch and phase so canonical
	// fire instants stay aligned across the restart.
	e.sch.Restore(time.UnixMicro(snap.EpochMicros).UTC(),
		time.Duration(snap.PhaseMicros)*time.Microsecond,
		time.UnixMicro(snap.CursorMicros).UTC())
	if e.vclk != nil {
		e.vclk.AdvanceTo(time.UnixMicro(snap.NowMicros).UTC())
	}
	return nil
}

// restoreDT rebuilds a dynamic table payload from its checkpointed state.
func (e *Engine) restoreDT(entryID int64, st *persist.DTState) (*core.DynamicTable, error) {
	p := e.pers
	tbl, ok := p.table(st.TableKey)
	if !ok {
		return nil, fmt.Errorf("dyntables: DT %s references unknown table key %d", st.Name, st.TableKey)
	}
	dt := core.RestoreDynamicTable(st.Name, st.Text,
		sql.TargetLag{Kind: sql.TargetLagKind(st.LagKind), Duration: time.Duration(st.LagMicros) * time.Microsecond},
		st.Warehouse, sql.RefreshMode(st.DeclaredMode), sql.RefreshMode(st.EffectiveMode), tbl)
	dt.EntryID = entryID
	// History capacity is process state (not checkpointed); recovered
	// DTs adopt the reopened engine's configured bound like Build does.
	dt.SetHistoryCapacity(e.ctrl.HistoryCapacity)

	cp := core.DTCheckpoint{
		Suspended:         st.Suspended,
		Initialized:       st.Initialized,
		ErrorCount:        st.ErrorCount,
		Deps:              st.Deps,
		SchemaFingerprint: st.SchemaFingerprint,
		VersionByDataTS:   st.VersionByDataTS,
		CommitByDataTS:    st.CommitByDataTS,
		AdaptiveMode:      sql.RefreshMode(st.AdaptiveMode),
		AdaptiveReason:    st.AdaptiveReason,
	}
	cp.Frontier = core.Frontier{
		DataTS:   time.UnixMicro(st.FrontierTSMicros).UTC(),
		Versions: ivm.VersionMap{},
	}
	if st.FrontierTSMicros == 0 {
		cp.Frontier.DataTS = time.Time{}
	}
	for key, seq := range st.FrontierVersions {
		src, ok := p.table(key)
		if !ok {
			return nil, fmt.Errorf("dyntables: DT %s frontier references unknown table key %d", st.Name, key)
		}
		cp.Frontier.Versions[src.ID()] = seq
	}
	for _, h := range st.History {
		rec := core.RefreshRecord{
			DataTS:            time.UnixMicro(h.DataTSMicros).UTC(),
			Action:            core.RefreshAction(h.Action),
			Inserted:          h.Inserted,
			Deleted:           h.Deleted,
			RowsAfter:         h.RowsAfter,
			SourceRowsScanned: h.SourceRowsScanned,
			EffectiveMode:     sql.RefreshMode(h.Mode),
			ModeReason:        h.ModeReason,
			SourceRowsChanged: h.ChangedRows,
			FullScanEstimate:  h.FullScanRows,
		}
		if h.Err != "" {
			rec.Err = errors.New(h.Err)
		}
		cp.History = append(cp.History, rec)
	}
	dt.RestoreState(cp)
	return dt, nil
}

// ---------------------------------------------------------------------------
// WAL replay
// ---------------------------------------------------------------------------

func (e *Engine) replayRecord(rec *persist.Record) error {
	switch rec.Kind {
	case persist.KindCreateTable:
		return e.replayCreateTable(rec.CreateTable)
	case persist.KindCreateView:
		return e.replayCreateView(rec.CreateView)
	case persist.KindCreateWh:
		return e.replayCreateWarehouse(rec.CreateWh)
	case persist.KindCreateDT:
		return e.replayCreateDT(rec.CreateDT)
	case persist.KindDrop:
		return e.replayDrop(rec.Drop)
	case persist.KindUndrop:
		return e.replayUndrop(rec.Undrop)
	case persist.KindRename:
		if entry, err := e.cat.Get(rec.Rename.Name); err == nil {
			if dt, ok := entry.Payload.(*core.DynamicTable); ok {
				dt.Name = rec.Rename.Target
			}
		}
		return e.cat.Rename(rec.Rename.Name, rec.Rename.Target, rec.Rename.TS)
	case persist.KindSwap:
		return e.cat.Swap(rec.Swap.Name, rec.Swap.Target, rec.Swap.TS)
	case persist.KindAlterDT:
		return e.replayAlterDT(rec.AlterDT)
	case persist.KindGrant:
		g := rec.Grant
		if g.Revoked {
			e.cat.Revoke(g.ObjectID, catalog.Privilege(g.Privilege), g.Role)
		} else {
			e.cat.Grant(g.ObjectID, catalog.Privilege(g.Privilege), g.Role)
		}
		return nil
	case persist.KindCommit:
		return e.replayCommit(rec.Commit)
	case persist.KindFrontier:
		return e.replayFrontier(rec.Frontier)
	case persist.KindClock:
		if e.vclk != nil {
			e.vclk.AdvanceTo(time.UnixMicro(rec.Clock.NowMicros).UTC())
		}
		e.sch.Restore(e.sch.Epoch(), e.sch.Phase(), time.UnixMicro(rec.Clock.CursorMicros).UTC())
		return nil
	case persist.KindCreateAlert:
		ca := rec.CreateAlert
		e.installAlert(alertSnap{def: alert.Definition{
			Name:          ca.Name,
			Owner:         ca.Owner,
			Schedule:      time.Duration(ca.ScheduleMicros) * time.Microsecond,
			ConditionText: ca.ConditionText,
			Action:        alert.ActionKind(ca.ActionKind),
			WebhookURL:    ca.ActionURL,
			ActionSQL:     ca.ActionSQL,
		}})
		return nil
	case persist.KindDropAlert:
		e.removeAlert(rec.DropAlert.Name)
		return nil
	case persist.KindAlterAlert:
		e.setAlertSuspended(rec.AlterAlert.Name, rec.AlterAlert.Action == "SUSPEND")
		return nil
	case persist.KindAlertState:
		as := rec.AlertState
		st := alert.State{
			Status:      alert.Status(as.Status),
			TrueStreak:  as.TrueStreak,
			FalseStreak: as.FalseStreak,
			Firings:     as.Firings,
		}
		if as.LastFiredMicros != 0 {
			st.LastFired = time.UnixMicro(as.LastFiredMicros).UTC()
		}
		var nextDue time.Time
		if as.NextDueMicros != 0 {
			nextDue = time.UnixMicro(as.NextDueMicros).UTC()
		}
		e.setAlertState(as.Name, st, nextDue)
		return nil
	case persist.KindCompact:
		t, ok := e.pers.table(rec.Compact.TableKey)
		if !ok {
			return fmt.Errorf("dyntables: compact for unknown table key %d", rec.Compact.TableKey)
		}
		_, _, err := t.Compact(rec.Compact.Horizon)
		return err
	default:
		return fmt.Errorf("dyntables: unknown WAL record kind %q", rec.Kind)
	}
}

// replayCatalogInstall mirrors the Create/Replace split of the live DDL
// paths and verifies that replay reproduced the original entry ID: the
// allocator is deterministic, so a mismatch means the log is corrupt.
func (e *Engine) replayCatalogInstall(name string, payload catalog.Object, owner string,
	deps []int64, ts hlc.Timestamp, orReplace bool, wantID int64) (*catalog.Entry, error) {
	var entry *catalog.Entry
	var err error
	if orReplace {
		e.deregisterReplacedPayload(name)
		entry, err = e.cat.Replace(name, payload, owner, deps, ts)
	} else {
		entry, err = e.cat.Create(name, payload, owner, deps, ts)
	}
	if err != nil {
		return nil, err
	}
	if wantID != 0 && entry.ID != wantID {
		return nil, fmt.Errorf("dyntables: replay assigned entry ID %d, log expects %d", entry.ID, wantID)
	}
	return entry, nil
}

func (e *Engine) replayCreateTable(rec *persist.CreateTableRecord) error {
	var t *storage.Table
	if rec.CloneOfKey != 0 {
		src, ok := e.pers.table(rec.CloneOfKey)
		if !ok {
			return fmt.Errorf("dyntables: clone source table key %d unknown", rec.CloneOfKey)
		}
		clone, err := src.Clone(rec.CloneAt)
		if err != nil {
			return err
		}
		t = clone
	} else {
		t = storage.NewTable(persist.DecodeSchema(rec.Schema), rec.CreatedAt)
	}
	e.pers.registerRestoredTable(rec.TableKey, t)
	_, err := e.replayCatalogInstall(rec.Name, &tableObject{table: t}, rec.Owner, nil,
		rec.CreatedAt, rec.OrReplace, rec.EntryID)
	return err
}

func (e *Engine) replayCreateView(rec *persist.CreateViewRecord) error {
	_, err := e.replayCatalogInstall(rec.Name, &viewObject{text: rec.Text}, rec.Owner,
		rec.Deps, rec.CreatedAt, rec.OrReplace, rec.EntryID)
	return err
}

func (e *Engine) replayCreateWarehouse(rec *persist.CreateWhRecord) error {
	wh, err := e.pool.Create(rec.Name, warehouse.Size(rec.Size), time.Duration(rec.AutoSuspend)*time.Microsecond)
	if err != nil {
		if rec.OrReplace {
			existing, gerr := e.pool.Get(rec.Name)
			if gerr != nil {
				return err
			}
			existing.Size = warehouse.Size(rec.Size)
			existing.AutoSuspend = time.Duration(rec.AutoSuspend) * time.Microsecond
			return nil
		}
		return err
	}
	if !e.cat.Exists(rec.Name) {
		if _, err := e.replayCatalogInstall(rec.Name, &warehouseObject{wh: wh}, rec.Owner,
			nil, rec.CreatedAt, false, rec.EntryID); err != nil {
			return err
		}
	}
	return nil
}

func (e *Engine) replayCreateDT(rec *persist.CreateDTRecord) error {
	lag := sql.TargetLag{Kind: sql.TargetLagKind(rec.LagKind), Duration: time.Duration(rec.LagMicros) * time.Microsecond}
	var dt *core.DynamicTable
	if rec.CloneOf != "" {
		_, src, err := e.dynamicTable(rec.CloneOf)
		if err != nil {
			return err
		}
		clone, err := src.CloneAt(rec.CloneAt)
		if err != nil {
			return err
		}
		clone.Name = rec.Name
		clone.Lag = lag
		dt = clone
	} else {
		dt = core.RestoreDynamicTable(rec.Name, rec.Text, lag, rec.Warehouse,
			sql.RefreshMode(rec.DeclaredMode), sql.RefreshMode(rec.EffectiveMode),
			storage.NewTable(persist.DecodeSchema(rec.Schema), rec.CreatedAt))
	}
	dt.SetHistoryCapacity(e.ctrl.HistoryCapacity)
	if rec.OrReplace {
		if old, derr := e.cat.Get(rec.Name); derr == nil {
			if oldDT, ok := old.Payload.(*core.DynamicTable); ok {
				e.sch.Untrack(oldDT)
				e.ctrl.Unregister(oldDT)
			}
		}
	}
	e.pers.registerRestoredTable(rec.TableKey, dt.Storage)
	entry, err := e.replayCatalogInstall(rec.Name, dt, rec.Owner, rec.Deps,
		rec.CreatedAt, rec.OrReplace, rec.EntryID)
	if err != nil {
		return err
	}
	dt.EntryID = entry.ID
	e.ctrl.Register(dt)
	e.sch.Track(dt)
	return nil
}

func (e *Engine) replayDrop(rec *persist.DropRecord) error {
	if entry, err := e.cat.Get(rec.Name); err == nil {
		if dt, ok := entry.Payload.(*core.DynamicTable); ok {
			e.sch.Untrack(dt)
		}
	}
	return e.cat.Drop(rec.Name, rec.TS)
}

func (e *Engine) replayUndrop(rec *persist.DropRecord) error {
	entry, err := e.cat.Undrop(rec.Name, rec.TS)
	if err != nil {
		return err
	}
	if dt, ok := entry.Payload.(*core.DynamicTable); ok {
		e.sch.Track(dt)
	}
	return nil
}

func (e *Engine) replayAlterDT(rec *persist.AlterDTRecord) error {
	_, dt, err := e.dynamicTable(rec.Name)
	if err != nil {
		return err
	}
	switch rec.Action {
	case "SUSPEND":
		dt.Suspend()
	case "RESUME":
		dt.Resume()
	case "SET_LAG":
		dt.Lag = sql.TargetLag{Kind: sql.TargetLagKind(rec.LagKind), Duration: time.Duration(rec.LagMicros) * time.Microsecond}
	case "SET_MODE":
		return e.setRefreshMode(dt, sql.RefreshMode(rec.Mode))
	default:
		return fmt.Errorf("dyntables: unknown ALTER action %q in WAL", rec.Action)
	}
	return nil
}

func (e *Engine) replayCommit(rec *persist.CommitRecord) error {
	t, ok := e.pers.table(rec.TableKey)
	if !ok {
		return fmt.Errorf("dyntables: commit for unknown table key %d", rec.TableKey)
	}
	// Schema evolution (REPLACE TABLE, DT output changes) rides along on
	// commit records; installing it before the version keeps replay
	// equivalent to the live path.
	t.SetSchema(persist.DecodeSchema(rec.Schema))
	switch rec.Kind {
	case persist.CommitApply:
		cs, err := persist.DecodeChangeSet(rec.Changes)
		if err != nil {
			return err
		}
		_, err = t.Apply(cs, rec.Commit)
		return err
	case persist.CommitOverwrite:
		rows, err := persist.DecodeRowMap(rec.Rows)
		if err != nil {
			return err
		}
		_, err = t.Overwrite(rows, rec.Commit)
		return err
	case persist.CommitDataEquiv:
		_, err := t.AppendDataEquivalent(rec.Commit)
		return err
	default:
		return fmt.Errorf("dyntables: unknown commit kind %q", rec.Kind)
	}
}

func (e *Engine) replayFrontier(rec *persist.FrontierRecord) error {
	entry, err := e.cat.GetByID(rec.EntryID)
	if err != nil {
		return err
	}
	dt, ok := entry.Payload.(*core.DynamicTable)
	if !ok {
		return fmt.Errorf("dyntables: frontier record for non-DT entry %d", rec.EntryID)
	}
	versions := ivm.VersionMap{}
	for key, seq := range rec.Versions {
		t, ok := e.pers.table(key)
		if !ok {
			return fmt.Errorf("dyntables: frontier references unknown table key %d", key)
		}
		versions[t.ID()] = seq
	}
	dt.ApplyFrontierUpdate(core.FrontierUpdate{
		DataTS:            time.UnixMicro(rec.DataTSMicros).UTC(),
		Versions:          versions,
		VersionSeq:        rec.VersionSeq,
		Commit:            rec.Commit,
		Deps:              rec.Deps,
		SchemaFingerprint: rec.SchemaFingerprint,
		Initialized:       rec.Initialized,
		AdaptiveValid:     rec.AdaptiveValid,
		AdaptiveMode:      sql.RefreshMode(rec.AdaptiveMode),
		AdaptiveReason:    rec.AdaptiveReason,
	})
	return nil
}

// ---------------------------------------------------------------------------
// live record emission (called from the DDL paths in statements.go)
// ---------------------------------------------------------------------------

// durable reports whether the engine write-ahead-logs mutations.
func (e *Engine) durable() bool {
	return e.pers != nil && !e.pers.replaying.Load()
}

func (e *Engine) logClock() {
	if !e.durable() || e.closed.Load() {
		return
	}
	e.pers.append(&persist.Record{Kind: persist.KindClock, Clock: &persist.ClockRecord{
		NowMicros:    e.clk.Now().UnixMicro(),
		CursorMicros: e.sch.Cursor().UnixMicro(),
	}})
}

// logCompact appends a compaction record so recovery reproduces the fold:
// replayed commits rebuild the full chain, then the compact record folds
// it at the same effective horizon.
func (e *Engine) logCompact(t *storage.Table, horizon int64) {
	if !e.durable() || e.closed.Load() {
		return
	}
	key, ok := e.pers.keyOf(t.ID())
	if !ok {
		return
	}
	e.pers.append(&persist.Record{Kind: persist.KindCompact, Compact: &persist.CompactRecord{
		TableKey: key,
		Horizon:  horizon,
	}})
}

// logCreateTable registers a just-created base table with the durability
// layer and appends its WAL record. Registration happens here — after the
// catalog accepted the entry — so only catalog-reachable tables are
// write-ahead-logged.
func (e *Engine) logCreateTable(stmt *sql.CreateTableStmt, entry *catalog.Entry,
	table, cloneOf *storage.Table, createdAt hlc.Timestamp) error {
	if !e.durable() {
		return nil
	}
	rec := &persist.CreateTableRecord{
		Name:      stmt.Name,
		Owner:     entry.Owner,
		EntryID:   entry.ID,
		TableKey:  e.pers.registerTable(table),
		OrReplace: stmt.OrReplace,
		Schema:    persist.EncodeSchema(table.Schema()),
		CreatedAt: createdAt,
	}
	if cloneOf != nil {
		key, ok := e.pers.keyOf(cloneOf.ID())
		if !ok {
			return fmt.Errorf("dyntables: clone source %s is not registered for durability", stmt.CloneOf)
		}
		rec.CloneOfKey = key
		rec.CloneAt = createdAt
	}
	e.pers.append(&persist.Record{Kind: persist.KindCreateTable, CreateTable: rec})
	return nil
}

func (e *Engine) logCreateView(stmt *sql.CreateViewStmt, entry *catalog.Entry, deps []int64, ts hlc.Timestamp) {
	if !e.durable() {
		return
	}
	e.pers.append(&persist.Record{Kind: persist.KindCreateView, CreateView: &persist.CreateViewRecord{
		Name:      stmt.Name,
		Owner:     entry.Owner,
		EntryID:   entry.ID,
		OrReplace: stmt.OrReplace,
		Text:      stmt.Text,
		Deps:      deps,
		CreatedAt: ts,
	}})
}

func (e *Engine) logCreateWarehouse(name, owner string, entryID int64, orReplace bool,
	size warehouse.Size, autoSuspend time.Duration, ts hlc.Timestamp) {
	if !e.durable() {
		return
	}
	e.pers.append(&persist.Record{Kind: persist.KindCreateWh, CreateWh: &persist.CreateWhRecord{
		Name:        name,
		Owner:       owner,
		EntryID:     entryID,
		OrReplace:   orReplace,
		Size:        int(size),
		AutoSuspend: int64(autoSuspend / time.Microsecond),
		CreatedAt:   ts,
	}})
}

func (e *Engine) logCreateDT(orReplace bool, entry *catalog.Entry, dt *core.DynamicTable,
	owner string, deps []int64, createdAt hlc.Timestamp, cloneOf string, cloneAt hlc.Timestamp) {
	if !e.durable() {
		return
	}
	e.pers.append(&persist.Record{Kind: persist.KindCreateDT, CreateDT: &persist.CreateDTRecord{
		Name:          dt.Name,
		Owner:         owner,
		EntryID:       entry.ID,
		TableKey:      e.pers.registerTable(dt.Storage),
		OrReplace:     orReplace,
		Text:          dt.Text,
		LagKind:       int(dt.Lag.Kind),
		LagMicros:     int64(dt.Lag.Duration / time.Microsecond),
		Warehouse:     dt.Warehouse,
		DeclaredMode:  int(dt.DeclaredMode),
		EffectiveMode: int(dt.EffectiveMode),
		Schema:        persist.EncodeSchema(dt.Storage.Schema()),
		Deps:          deps,
		CreatedAt:     createdAt,
		CloneOf:       cloneOf,
		CloneAt:       cloneAt,
	}})
}

func (e *Engine) logDropUndrop(kind, name string, ts hlc.Timestamp) {
	if !e.durable() {
		return
	}
	rec := &persist.Record{Kind: kind}
	dr := &persist.DropRecord{Name: name, TS: ts}
	if kind == persist.KindDrop {
		rec.Drop = dr
	} else {
		rec.Undrop = dr
	}
	e.pers.append(rec)
}

func (e *Engine) logRenameSwap(kind, name, target string, ts hlc.Timestamp) {
	if !e.durable() {
		return
	}
	rec := &persist.Record{Kind: kind}
	rr := &persist.RenameRecord{Name: name, Target: target, TS: ts}
	if kind == persist.KindRename {
		rec.Rename = rr
	} else {
		rec.Swap = rr
	}
	e.pers.append(rec)
}

func (e *Engine) logAlterDT(name, action string, lag *sql.TargetLag) {
	if !e.durable() {
		return
	}
	rec := &persist.AlterDTRecord{Name: name, Action: action}
	if lag != nil {
		rec.LagKind = int(lag.Kind)
		rec.LagMicros = int64(lag.Duration / time.Microsecond)
	}
	e.pers.append(&persist.Record{Kind: persist.KindAlterDT, AlterDT: rec})
}

// logAlterDTMode write-ahead-logs ALTER ... SET REFRESH_MODE so replay
// re-pins the declared mode (and clears the adaptive decision) the same
// way the live path did.
func (e *Engine) logAlterDTMode(name string, mode sql.RefreshMode) {
	if !e.durable() {
		return
	}
	e.pers.append(&persist.Record{Kind: persist.KindAlterDT, AlterDT: &persist.AlterDTRecord{
		Name: name, Action: "SET_MODE", Mode: int(mode),
	}})
}

func (e *Engine) logCreateAlert(def alert.Definition, orReplace bool) {
	if !e.durable() {
		return
	}
	e.pers.append(&persist.Record{Kind: persist.KindCreateAlert, CreateAlert: &persist.CreateAlertRecord{
		Name:           def.Name,
		Owner:          def.Owner,
		OrReplace:      orReplace,
		ScheduleMicros: int64(def.Schedule / time.Microsecond),
		ConditionText:  def.ConditionText,
		ActionKind:     string(def.Action),
		ActionURL:      def.WebhookURL,
		ActionSQL:      def.ActionSQL,
	}})
}

func (e *Engine) logDropAlert(name string) {
	if !e.durable() {
		return
	}
	e.pers.append(&persist.Record{Kind: persist.KindDropAlert,
		DropAlert: &persist.DropAlertRecord{Name: name}})
}

func (e *Engine) logAlterAlert(name, action string) {
	if !e.durable() {
		return
	}
	e.pers.append(&persist.Record{Kind: persist.KindAlterAlert,
		AlterAlert: &persist.AlterAlertRecord{Name: name, Action: action}})
}

// logAlertState write-ahead-logs an alert's evaluation-state transition
// (firing/resolved edges), so a recovered engine resumes the state
// machine where it left off instead of re-firing a delivered action.
func (e *Engine) logAlertState(name string, st alert.State, nextDue time.Time) {
	if !e.durable() {
		return
	}
	rec := &persist.AlertStateRecord{
		Name:        name,
		Status:      string(st.Status),
		TrueStreak:  st.TrueStreak,
		FalseStreak: st.FalseStreak,
		Firings:     st.Firings,
	}
	if !st.LastFired.IsZero() {
		rec.LastFiredMicros = st.LastFired.UnixMicro()
	}
	if !nextDue.IsZero() {
		rec.NextDueMicros = nextDue.UnixMicro()
	}
	e.pers.append(&persist.Record{Kind: persist.KindAlertState, AlertState: rec})
}

// afterWrite runs the checkpoint cadence check once statement locks are
// released.
func (e *Engine) afterWrite() {
	if !e.durable() || e.closed.Load() {
		return
	}
	if e.pers.wal.Records() >= e.checkpointEvery {
		_ = e.Checkpoint()
	}
}

// ---------------------------------------------------------------------------
// checkpointing
// ---------------------------------------------------------------------------

// Checkpoint folds the WAL into a fresh snapshot: it takes the exclusive
// statement lock (so no commits are in flight), writes the full engine
// state to a temp file, atomically installs it, and resets the WAL. A
// crash between the install and the reset is safe — records already
// folded into the snapshot carry sequence numbers at or below the
// snapshot's watermark and are skipped at recovery.
func (e *Engine) Checkpoint() error {
	if e.pers == nil {
		return fmt.Errorf("dyntables: engine is not durable (use Open)")
	}
	if err := e.checkOpen(); err != nil {
		return err
	}
	e.stmtMu.Lock()
	defer e.stmtMu.Unlock()
	return e.checkpointLocked()
}

func (e *Engine) checkpointLocked() error {
	p := e.pers
	if err := p.firstErr(); err != nil {
		return fmt.Errorf("dyntables: WAL append failed earlier: %w", err)
	}
	root := e.trc.StartRoot("checkpoint")
	defer func() { e.trc.FinishRoot(root) }()
	buildSpan := root.Child("snapshot.build")
	snap, err := e.buildSnapshot()
	buildSpan.End()
	if err != nil {
		return err
	}
	writeSpan := root.Child("snapshot.write")
	err = persist.WriteSnapshot(p.dir, snap)
	writeSpan.End()
	if err != nil {
		return err
	}
	// Drop only what the snapshot folded in: records appended during the
	// state capture by lock-free paths (AdvanceTime's clock records)
	// carry later sequence numbers and survive the reset.
	resetSpan := root.Child("wal.reset")
	err = p.wal.ResetUpTo(snap.WalSeq)
	resetSpan.End()
	if err != nil {
		return err
	}
	p.checkpoints.Add(1)
	p.lastCheckpoint.Store(time.Now().UnixNano())
	return nil
}

func (e *Engine) buildSnapshot() (*persist.Snapshot, error) {
	p := e.pers
	snap := &persist.Snapshot{
		WalSeq:       p.wal.LastSeq(),
		NowMicros:    e.clk.Now().UnixMicro(),
		EpochMicros:  e.sch.Epoch().UnixMicro(),
		PhaseMicros:  int64(e.sch.Phase() / time.Microsecond),
		CursorMicros: e.sch.Cursor().UnixMicro(),
	}

	p.mu.Lock()
	snap.TableSeq = p.nextKey
	keys := make([]int64, 0, len(p.tableByKey))
	for key := range p.tableByKey {
		keys = append(keys, key)
	}
	tables := make(map[int64]*storage.Table, len(p.tableByKey))
	for key, t := range p.tableByKey {
		tables[key] = t
	}
	keyOf := make(map[int64]int64, len(p.keyByStorageID))
	for id, key := range p.keyByStorageID {
		keyOf[id] = key
	}
	p.mu.Unlock()
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })

	for _, key := range keys {
		ts, err := persist.EncodeTable(key, tables[key].State())
		if err != nil {
			return nil, err
		}
		snap.Tables = append(snap.Tables, ts)
	}

	for _, entry := range e.cat.Entries() {
		es := persist.EntryState{
			ID:         entry.ID,
			Name:       entry.Name,
			Kind:       uint8(entry.Kind),
			Owner:      entry.Owner,
			DependsOn:  append([]int64(nil), entry.DependsOn...),
			Generation: entry.Generation,
			Dropped:    entry.Dropped,
			DroppedAt:  entry.DroppedAt,
		}
		switch payload := entry.Payload.(type) {
		case *tableObject:
			key, ok := keyOf[payload.table.ID()]
			if !ok {
				return nil, fmt.Errorf("dyntables: table %s is not registered for durability", entry.Name)
			}
			es.TableKey = key
		case *viewObject:
			es.ViewText = payload.text
		case *warehouseObject:
			es.Warehouse = payload.wh.Name
		case *core.DynamicTable:
			ds, err := e.snapshotDT(payload, keyOf)
			if err != nil {
				return nil, err
			}
			es.DT = ds
		default:
			return nil, fmt.Errorf("dyntables: entry %s has unsupported payload %T", entry.Name, entry.Payload)
		}
		snap.Entries = append(snap.Entries, es)
	}

	for _, g := range e.cat.AllGrants() {
		snap.Grants = append(snap.Grants, persist.GrantRecord{
			ObjectID: g.ObjectID, Privilege: int(g.Privilege), Role: g.Role,
		})
	}
	for _, d := range e.cat.DDLLog() {
		snap.DDLLog = append(snap.DDLLog, persist.DDLState{
			Seq: d.Seq, TS: d.TS, Op: d.Op, Kind: uint8(d.Kind), ID: d.ID, Name: d.Name, Detail: d.Detail,
		})
	}
	snap.NextCatalogID, snap.DDLSeq = e.cat.Counters()

	for _, wh := range e.pool.All() {
		st := wh.State()
		snap.Warehouses = append(snap.Warehouses, persist.WarehouseState{
			Name:        wh.Name,
			Size:        int(wh.Size),
			AutoSuspend: int64(wh.AutoSuspend / time.Microsecond),
			BusyUntilUS: st.BusyUntil.UnixMicro(),
			EverUsed:    st.EverUsed,
			BilledUS:    int64(st.Billed / time.Microsecond),
			Resumes:     st.Resumes,
		})
	}
	sort.Slice(snap.Warehouses, func(i, j int) bool { return snap.Warehouses[i].Name < snap.Warehouses[j].Name })

	for _, a := range e.alertSnapshots() {
		as := persist.AlertState{
			Name:           a.def.Name,
			Owner:          a.def.Owner,
			ScheduleMicros: int64(a.def.Schedule / time.Microsecond),
			ConditionText:  a.def.ConditionText,
			ActionKind:     string(a.def.Action),
			ActionURL:      a.def.WebhookURL,
			ActionSQL:      a.def.ActionSQL,
			Suspended:      a.suspended,
			Status:         string(a.state.Status),
			TrueStreak:     a.state.TrueStreak,
			FalseStreak:    a.state.FalseStreak,
			Firings:        a.state.Firings,
		}
		if !a.state.LastFired.IsZero() {
			as.LastFiredMicros = a.state.LastFired.UnixMicro()
		}
		if !a.nextDue.IsZero() {
			as.NextDueMicros = a.nextDue.UnixMicro()
		}
		snap.Alerts = append(snap.Alerts, as)
	}
	return snap, nil
}

func (e *Engine) snapshotDT(dt *core.DynamicTable, keyOf map[int64]int64) (*persist.DTState, error) {
	key, ok := keyOf[dt.Storage.ID()]
	if !ok {
		return nil, fmt.Errorf("dyntables: DT %s storage is not registered for durability", dt.Name)
	}
	cp := dt.Checkpoint()
	st := &persist.DTState{
		Name:              dt.Name,
		Text:              dt.Text,
		LagKind:           int(dt.Lag.Kind),
		LagMicros:         int64(dt.Lag.Duration / time.Microsecond),
		Warehouse:         dt.Warehouse,
		DeclaredMode:      int(dt.DeclaredMode),
		EffectiveMode:     int(dt.EffectiveMode),
		TableKey:          key,
		Suspended:         cp.Suspended,
		Initialized:       cp.Initialized,
		ErrorCount:        cp.ErrorCount,
		Deps:              cp.Deps,
		SchemaFingerprint: cp.SchemaFingerprint,
		VersionByDataTS:   cp.VersionByDataTS,
		CommitByDataTS:    cp.CommitByDataTS,
		AdaptiveMode:      int(cp.AdaptiveMode),
		AdaptiveReason:    cp.AdaptiveReason,
	}
	if !cp.Frontier.DataTS.IsZero() {
		st.FrontierTSMicros = cp.Frontier.DataTS.UnixMicro()
	}
	if len(cp.Frontier.Versions) > 0 {
		st.FrontierVersions = make(map[int64]int64, len(cp.Frontier.Versions))
		for storageID, seq := range cp.Frontier.Versions {
			fk, ok := keyOf[storageID]
			if !ok {
				return nil, fmt.Errorf("dyntables: DT %s frontier references unregistered table %d", dt.Name, storageID)
			}
			st.FrontierVersions[fk] = seq
		}
	}
	for _, h := range cp.History {
		hs := persist.RefreshState{
			DataTSMicros:      h.DataTS.UnixMicro(),
			Action:            uint8(h.Action),
			Inserted:          h.Inserted,
			Deleted:           h.Deleted,
			RowsAfter:         h.RowsAfter,
			SourceRowsScanned: h.SourceRowsScanned,
			Mode:              int(h.EffectiveMode),
			ModeReason:        h.ModeReason,
			ChangedRows:       h.SourceRowsChanged,
			FullScanRows:      h.FullScanEstimate,
		}
		if h.Err != nil {
			hs.Err = h.Err.Error()
		}
		st.History = append(st.History, hs)
	}
	return st, nil
}

// ---------------------------------------------------------------------------
// Close
// ---------------------------------------------------------------------------

// Close shuts the engine down: it invalidates every session's prepared
// statements, and for durable engines takes a final checkpoint, fsyncs
// and closes the WAL. Close is idempotent; it refuses while Rows cursors
// are still open (use ForceClose to override). After Close every
// statement fails with ErrClosed.
func (e *Engine) Close() error {
	if e.closed.Load() {
		return nil
	}
	if n := e.OpenCursors(); n > 0 {
		return fmt.Errorf("dyntables: cannot close engine with %d open cursors (close them or use ForceClose)", n)
	}
	return e.ForceClose()
}

// ForceClose is Close without the open-cursor check: in-flight cursors
// keep reading their pinned in-memory versions but the engine stops
// accepting statements.
func (e *Engine) ForceClose() error {
	if !e.closed.CompareAndSwap(false, true) {
		return nil
	}

	// Invalidate sessions and their prepared statements.
	e.sessMu.Lock()
	sessions := make([]*Session, 0, len(e.sessions))
	for s := range e.sessions {
		sessions = append(sessions, s)
	}
	e.sessions = make(map[*Session]struct{})
	e.sessMu.Unlock()
	for _, s := range sessions {
		s.invalidate()
	}

	if e.pers == nil {
		return nil
	}
	// The exclusive statement lock drains in-flight statements, so every
	// acknowledged write reaches the WAL before the final checkpoint;
	// statements that passed the closed check but not yet the lock fail
	// their re-check under the lock. The WAL is closed under the same
	// critical section so no append can land after it.
	e.stmtMu.Lock()
	err := e.checkpointLocked()
	if werr := e.pers.wal.Close(); err == nil {
		err = werr
	}
	e.stmtMu.Unlock()
	if perr := e.pers.firstErr(); err == nil {
		err = perr
	}
	return err
}

// crash simulates a process crash for tests and benches: the WAL file is
// closed — releasing the data-directory lock — without the final
// checkpoint Close would take, so recovery must replay the log.
func (e *Engine) crash() error {
	if !e.closed.CompareAndSwap(false, true) {
		return nil
	}
	if e.pers != nil {
		return e.pers.wal.Close()
	}
	return nil
}

package dyntables

import (
	"fmt"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"

	"dyntables/internal/alert"
	"dyntables/internal/catalog"
	"dyntables/internal/core"
	"dyntables/internal/health"
	"dyntables/internal/obs"
	"dyntables/internal/sched"
	"dyntables/internal/storage"
)

// MetricsText renders the engine's operational state in the Prometheus
// text exposition format (version 0.0.4). Every value comes from a
// snapshot accessor with its own short-lived lock — no engine lock is
// held across the whole scrape, so a slow scraper never stalls
// refreshes or statements. Refresh durations and lag gauges are in
// virtual time; request latencies, uptime and checkpoint age are host
// wall-clock.
func (e *Engine) MetricsText() string {
	var b strings.Builder

	gauge := func(name, help string, v float64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s gauge\n%s %s\n",
			name, help, name, name, fmtFloat(v))
	}

	gauge("dyntables_uptime_seconds", "Host seconds since the engine was constructed.",
		e.Uptime().Seconds())
	gauge("dyntables_sessions", "Open engine sessions.", float64(e.SessionCount()))
	gauge("dyntables_open_cursors", "Streaming cursors currently pinning snapshots.",
		float64(e.OpenCursors()))

	fmt.Fprintf(&b, "# HELP dyntables_trace_spans_total Spans recorded by the execution tracer.\n")
	fmt.Fprintf(&b, "# TYPE dyntables_trace_spans_total counter\n")
	fmt.Fprintf(&b, "dyntables_trace_spans_total %d\n", e.trc.SpanCount())

	e.writeRefreshMetrics(&b)
	e.writeLagMetrics(&b)
	e.writeResourceMetrics(&b)
	e.writeFootprintMetrics(&b)
	e.writeHealthMetrics(&b)
	e.writeAlertMetrics(&b)
	e.writeRequestMetrics(&b)
	e.writePersistMetrics(&b)
	e.writeRuntimeMetrics(&b)
	return b.String()
}

// writeRefreshMetrics emits the monotonic per-DT refresh counters.
func (e *Engine) writeRefreshMetrics(b *strings.Builder) {
	totals := e.rec.RefreshCounters()
	names := make([]string, 0, len(totals))
	for name := range totals {
		names = append(names, name)
	}
	sort.Strings(names)

	fmt.Fprintf(b, "# HELP dyntables_refreshes_total Recorded refresh attempts per dynamic table.\n")
	fmt.Fprintf(b, "# TYPE dyntables_refreshes_total counter\n")
	for _, name := range names {
		fmt.Fprintf(b, "dyntables_refreshes_total{dt=%s} %d\n", labelQuote(name), totals[name].Count)
	}
	fmt.Fprintf(b, "# HELP dyntables_refresh_errors_total Failed refresh attempts per dynamic table.\n")
	fmt.Fprintf(b, "# TYPE dyntables_refresh_errors_total counter\n")
	for _, name := range names {
		fmt.Fprintf(b, "dyntables_refresh_errors_total{dt=%s} %d\n", labelQuote(name), totals[name].Errors)
	}
	fmt.Fprintf(b, "# HELP dyntables_refresh_duration_seconds_total Summed virtual refresh execution time per dynamic table.\n")
	fmt.Fprintf(b, "# TYPE dyntables_refresh_duration_seconds_total counter\n")
	for _, name := range names {
		fmt.Fprintf(b, "dyntables_refresh_duration_seconds_total{dt=%s} %s\n",
			labelQuote(name), fmtFloat(totals[name].Seconds))
	}
}

// writeLagMetrics emits the per-DT freshness gauges: current lag against
// the virtual clock, the effective target, and lag-SLO attainment over
// the recorded sawtooth window.
func (e *Engine) writeLagMetrics(b *strings.Builder) {
	entries := e.cat.List(catalog.KindDynamicTable)
	sort.Slice(entries, func(i, j int) bool { return entries[i].Name < entries[j].Name })
	now := e.clk.Now()

	type dtLag struct {
		name              string
		lag, target, attn float64
		hasTarget, hasSLO bool
	}
	lags := make([]dtLag, 0, len(entries))
	for _, entry := range entries {
		dt, ok := entry.Payload.(*core.DynamicTable)
		if !ok {
			continue
		}
		l := dtLag{name: dt.Name, lag: -1}
		if dataTS := dt.DataTimestamp(); !dataTS.IsZero() {
			l.lag = now.Sub(dataTS).Seconds()
		}
		if target := e.sch.EffectiveLag(dt); target < sched.NoLag {
			l.hasTarget, l.target = true, target.Seconds()
			if stats := e.rec.SLO(dt.Name, target, now); stats.Samples > 0 {
				l.hasSLO, l.attn = true, stats.Attainment
			}
		}
		lags = append(lags, l)
	}

	fmt.Fprintf(b, "# HELP dyntables_dt_lag_seconds Virtual-clock staleness of each dynamic table (-1 before first refresh).\n")
	fmt.Fprintf(b, "# TYPE dyntables_dt_lag_seconds gauge\n")
	for _, l := range lags {
		fmt.Fprintf(b, "dyntables_dt_lag_seconds{dt=%s} %s\n", labelQuote(l.name), fmtFloat(l.lag))
	}
	fmt.Fprintf(b, "# HELP dyntables_dt_target_lag_seconds Effective target lag per dynamic table.\n")
	fmt.Fprintf(b, "# TYPE dyntables_dt_target_lag_seconds gauge\n")
	for _, l := range lags {
		if l.hasTarget {
			fmt.Fprintf(b, "dyntables_dt_target_lag_seconds{dt=%s} %s\n", labelQuote(l.name), fmtFloat(l.target))
		}
	}
	fmt.Fprintf(b, "# HELP dyntables_dt_slo_attainment Fraction of time each dynamic table spent within its target lag (0..1).\n")
	fmt.Fprintf(b, "# TYPE dyntables_dt_slo_attainment gauge\n")
	for _, l := range lags {
		if l.hasSLO {
			fmt.Fprintf(b, "dyntables_dt_slo_attainment{dt=%s} %s\n", labelQuote(l.name), fmtFloat(l.attn))
		}
	}
}

// writeResourceMetrics emits the monotonic per-DT refresh resource
// counters. CPU is goroutine wall-time (an approximation — Go has no
// per-goroutine CPU clock) and allocations are process-wide counter
// deltas taken on the refreshing worker.
func (e *Engine) writeResourceMetrics(b *strings.Builder) {
	totals := e.rec.ResourceCounters()
	names := make([]string, 0, len(totals))
	for name := range totals {
		names = append(names, name)
	}
	sort.Strings(names)

	fmt.Fprintf(b, "# HELP dyntables_dt_cpu_seconds_total Approximate host CPU (goroutine wall-time) spent refreshing each dynamic table.\n")
	fmt.Fprintf(b, "# TYPE dyntables_dt_cpu_seconds_total counter\n")
	for _, name := range names {
		fmt.Fprintf(b, "dyntables_dt_cpu_seconds_total{dt=%s} %s\n",
			labelQuote(name), fmtFloat(totals[name].CPUSeconds))
	}
	fmt.Fprintf(b, "# HELP dyntables_dt_alloc_bytes_total Heap bytes allocated while refreshing each dynamic table.\n")
	fmt.Fprintf(b, "# TYPE dyntables_dt_alloc_bytes_total counter\n")
	for _, name := range names {
		fmt.Fprintf(b, "dyntables_dt_alloc_bytes_total{dt=%s} %d\n",
			labelQuote(name), totals[name].AllocBytes)
	}
}

// writeFootprintMetrics emits per-table memory accounting gauges: live
// rows, version-chain rows, and estimated resident bytes for every base
// table and dynamic-table materialization.
func (e *Engine) writeFootprintMetrics(b *strings.Builder) {
	type tableFP struct {
		name string
		fp   storage.Footprint
	}
	var fps []tableFP
	for _, entry := range e.cat.List(catalog.KindTable) {
		if to, ok := entry.Payload.(*tableObject); ok && to.table != nil {
			fps = append(fps, tableFP{entry.Name, to.table.FootprintStats()})
		}
	}
	for _, entry := range e.cat.List(catalog.KindDynamicTable) {
		if dt, ok := entry.Payload.(*core.DynamicTable); ok && dt.Storage != nil {
			fps = append(fps, tableFP{entry.Name, dt.Storage.FootprintStats()})
		}
	}
	sort.Slice(fps, func(i, j int) bool { return fps[i].name < fps[j].name })

	fmt.Fprintf(b, "# HELP dyntables_table_versions Live MVCC versions retained per table.\n")
	fmt.Fprintf(b, "# TYPE dyntables_table_versions gauge\n")
	for _, t := range fps {
		fmt.Fprintf(b, "dyntables_table_versions{table=%s} %d\n", labelQuote(t.name), t.fp.Versions)
	}
	fmt.Fprintf(b, "# HELP dyntables_table_live_rows Rows visible at the newest version per table.\n")
	fmt.Fprintf(b, "# TYPE dyntables_table_live_rows gauge\n")
	for _, t := range fps {
		fmt.Fprintf(b, "dyntables_table_live_rows{table=%s} %d\n", labelQuote(t.name), t.fp.LiveRows)
	}
	fmt.Fprintf(b, "# HELP dyntables_table_chain_rows Change rows held across the retained version chain per table.\n")
	fmt.Fprintf(b, "# TYPE dyntables_table_chain_rows gauge\n")
	for _, t := range fps {
		fmt.Fprintf(b, "dyntables_table_chain_rows{table=%s} %d\n", labelQuote(t.name), t.fp.ChainRows)
	}
	fmt.Fprintf(b, "# HELP dyntables_table_bytes Estimated resident bytes of the version chain and snapshots per table.\n")
	fmt.Fprintf(b, "# TYPE dyntables_table_bytes gauge\n")
	for _, t := range fps {
		fmt.Fprintf(b, "dyntables_table_bytes{table=%s} %d\n", labelQuote(t.name), t.fp.Bytes)
	}
}

// healthStateValue maps a health status onto the numeric enum exported
// by dyntables_dt_health_state (higher is worse).
func healthStateValue(s health.Status) int {
	switch s {
	case health.AtRisk:
		return 1
	case health.MissingSLO:
		return 2
	case health.Failing:
		return 3
	default:
		return 0
	}
}

// writeHealthMetrics emits the per-DT health classification as a
// numeric enum gauge: 0=HEALTHY 1=AT_RISK 2=MISSING_SLO 3=FAILING.
func (e *Engine) writeHealthMetrics(b *strings.Builder) {
	reports := e.healthReports()
	fmt.Fprintf(b, "# HELP dyntables_dt_health_state Health classification per dynamic table (0=HEALTHY 1=AT_RISK 2=MISSING_SLO 3=FAILING).\n")
	fmt.Fprintf(b, "# TYPE dyntables_dt_health_state gauge\n")
	for _, r := range reports {
		fmt.Fprintf(b, "dyntables_dt_health_state{dt=%s} %d\n",
			labelQuote(r.Name), healthStateValue(r.Status))
	}
}

// writeRuntimeMetrics emits Go runtime gauges for the hosting process.
func (e *Engine) writeRuntimeMetrics(b *strings.Builder) {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	fmt.Fprintf(b, "# HELP dyntables_go_heap_inuse_bytes Heap bytes in in-use spans.\n")
	fmt.Fprintf(b, "# TYPE dyntables_go_heap_inuse_bytes gauge\n")
	fmt.Fprintf(b, "dyntables_go_heap_inuse_bytes %d\n", ms.HeapInuse)
	fmt.Fprintf(b, "# HELP dyntables_go_goroutines Live goroutines in the hosting process.\n")
	fmt.Fprintf(b, "# TYPE dyntables_go_goroutines gauge\n")
	fmt.Fprintf(b, "dyntables_go_goroutines %d\n", runtime.NumGoroutine())
	fmt.Fprintf(b, "# HELP dyntables_go_gc_pause_seconds_total Cumulative GC stop-the-world pause time.\n")
	fmt.Fprintf(b, "# TYPE dyntables_go_gc_pause_seconds_total counter\n")
	fmt.Fprintf(b, "dyntables_go_gc_pause_seconds_total %s\n",
		fmtFloat(float64(ms.PauseTotalNs)/1e9))
}

// writeRequestMetrics emits the served-request latency histogram
// (host wall-clock; populated only when the engine serves the network
// protocol).
func (e *Engine) writeRequestMetrics(b *strings.Builder) {
	h := e.rec.RequestLatency()
	fmt.Fprintf(b, "# HELP dyntables_request_duration_seconds Host latency of served protocol requests.\n")
	fmt.Fprintf(b, "# TYPE dyntables_request_duration_seconds histogram\n")
	for i, bound := range obs.RequestBuckets {
		fmt.Fprintf(b, "dyntables_request_duration_seconds_bucket{le=%q} %d\n",
			fmtFloat(bound), h.Buckets[i])
	}
	fmt.Fprintf(b, "dyntables_request_duration_seconds_bucket{le=\"+Inf\"} %d\n", h.Count)
	fmt.Fprintf(b, "dyntables_request_duration_seconds_sum %s\n", fmtFloat(h.Sum))
	fmt.Fprintf(b, "dyntables_request_duration_seconds_count %d\n", h.Count)
}

// writePersistMetrics emits WAL and checkpoint state; nothing for
// in-memory engines.
func (e *Engine) writePersistMetrics(b *strings.Builder) {
	st, ok := e.PersistStats()
	if !ok {
		return
	}
	fmt.Fprintf(b, "# HELP dyntables_wal_bytes Current WAL file length.\n")
	fmt.Fprintf(b, "# TYPE dyntables_wal_bytes gauge\n")
	fmt.Fprintf(b, "dyntables_wal_bytes %d\n", st.WALBytes)
	fmt.Fprintf(b, "# HELP dyntables_wal_appended_bytes_total Bytes ever appended to the WAL (survives checkpoint resets).\n")
	fmt.Fprintf(b, "# TYPE dyntables_wal_appended_bytes_total counter\n")
	fmt.Fprintf(b, "dyntables_wal_appended_bytes_total %d\n", st.WALAppendedBytes)
	fmt.Fprintf(b, "# HELP dyntables_wal_appends_total WAL append operations.\n")
	fmt.Fprintf(b, "# TYPE dyntables_wal_appends_total counter\n")
	fmt.Fprintf(b, "dyntables_wal_appends_total %d\n", st.WALAppends)
	fmt.Fprintf(b, "# HELP dyntables_wal_append_seconds_total Host time spent in WAL appends.\n")
	fmt.Fprintf(b, "# TYPE dyntables_wal_append_seconds_total counter\n")
	fmt.Fprintf(b, "dyntables_wal_append_seconds_total %s\n", fmtFloat(st.WALAppendTime.Seconds()))
	fmt.Fprintf(b, "# HELP dyntables_checkpoints_total Snapshot checkpoints installed.\n")
	fmt.Fprintf(b, "# TYPE dyntables_checkpoints_total counter\n")
	fmt.Fprintf(b, "dyntables_checkpoints_total %d\n", st.Checkpoints)
	fmt.Fprintf(b, "# HELP dyntables_checkpoint_age_seconds Host seconds since the last checkpoint (-1 if none yet).\n")
	fmt.Fprintf(b, "# TYPE dyntables_checkpoint_age_seconds gauge\n")
	age := -1.0
	if !st.LastCheckpoint.IsZero() {
		age = time.Since(st.LastCheckpoint).Seconds()
	}
	fmt.Fprintf(b, "dyntables_checkpoint_age_seconds %s\n", fmtFloat(age))
}

// writeAlertMetrics emits the watchdog families: monotonic per-alert
// evaluation/firing/action-error counters from the recorder's totals
// (they survive ring eviction) and the current firing gauge from the
// live registry.
func (e *Engine) writeAlertMetrics(b *strings.Builder) {
	totals := e.rec.AlertCounters()
	names := make([]string, 0, len(totals))
	for name := range totals {
		names = append(names, name)
	}
	sort.Strings(names)

	fmt.Fprintf(b, "# HELP dyntables_alert_evaluations_total Watchdog condition evaluations per alert.\n")
	fmt.Fprintf(b, "# TYPE dyntables_alert_evaluations_total counter\n")
	for _, name := range names {
		fmt.Fprintf(b, "dyntables_alert_evaluations_total{alert=%s} %d\n", labelQuote(name), totals[name].Evaluations)
	}
	fmt.Fprintf(b, "# HELP dyntables_alert_firings_total Fired alert actions per alert.\n")
	fmt.Fprintf(b, "# TYPE dyntables_alert_firings_total counter\n")
	for _, name := range names {
		fmt.Fprintf(b, "dyntables_alert_firings_total{alert=%s} %d\n", labelQuote(name), totals[name].Firings)
	}
	fmt.Fprintf(b, "# HELP dyntables_alert_action_errors_total Failed alert actions (webhook or SQL) per alert.\n")
	fmt.Fprintf(b, "# TYPE dyntables_alert_action_errors_total counter\n")
	for _, name := range names {
		fmt.Fprintf(b, "dyntables_alert_action_errors_total{alert=%s} %d\n", labelQuote(name), totals[name].ActionErrors)
	}

	e.alertMu.Lock()
	type alertGauge struct {
		name   string
		firing bool
	}
	gauges := make([]alertGauge, 0, len(e.alerts))
	for name, entry := range e.alerts {
		gauges = append(gauges, alertGauge{name, entry.state.Status == alert.Firing})
	}
	e.alertMu.Unlock()
	sort.Slice(gauges, func(i, j int) bool { return gauges[i].name < gauges[j].name })
	fmt.Fprintf(b, "# HELP dyntables_alert_firing Whether the alert is currently in the FIRING state (1) or OK (0).\n")
	fmt.Fprintf(b, "# TYPE dyntables_alert_firing gauge\n")
	for _, g := range gauges {
		v := 0
		if g.firing {
			v = 1
		}
		fmt.Fprintf(b, "dyntables_alert_firing{alert=%s} %d\n", labelQuote(g.name), v)
	}
}

// fmtFloat renders a metric value the shortest way Prometheus parsers
// accept.
func fmtFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// labelQuote escapes a label value per the exposition format.
func labelQuote(s string) string { return strconv.Quote(s) }

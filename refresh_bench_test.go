package dyntables

import (
	"fmt"
	"testing"
	"time"
)

func benchRefreshLoop(b *testing.B, columnar bool) {
	e := New(WithConfig(Config{RefreshWorkers: 1, DisableColumnar: !columnar}))
	defer e.Close()
	s := e.NewSession()
	s.MustExec(`CREATE WAREHOUSE wh`)
	s.MustExec(`CREATE TABLE base (k INT, grp INT, v INT)`)
	batch := ""
	for i := 0; i < 4000; i++ {
		if batch != "" {
			batch += ", "
		}
		batch += fmt.Sprintf("(%d, %d, %d)", i, i%37, i%101)
		if (i+1)%500 == 0 {
			s.MustExec(`INSERT INTO base VALUES ` + batch)
			batch = ""
		}
	}
	for i := 0; i < 8; i++ {
		s.MustExec(fmt.Sprintf(
			`CREATE DYNAMIC TABLE s_%02d TARGET_LAG = '2 minutes' WAREHOUSE = wh
			 AS SELECT grp, count(*) c, sum(v) total FROM base WHERE grp %% 8 = %d GROUP BY grp`, i, i))
	}
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		s.MustExec(fmt.Sprintf(`INSERT INTO base VALUES (%d, %d, %d)`, 10000+n, n%37, n%89))
		e.AdvanceTime(2 * time.Minute)
		if err := e.RunScheduler(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRefreshColumnar(b *testing.B) { benchRefreshLoop(b, true) }
func BenchmarkRefreshLegacy(b *testing.B)   { benchRefreshLoop(b, false) }

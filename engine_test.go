package dyntables

import (
	"sort"
	"strings"
	"testing"
	"time"

	"dyntables/internal/core"
	"dyntables/internal/warehouse"
)

func renderRows(res *Result) []string {
	out := make([]string, len(res.Rows))
	for i, r := range res.Rows {
		parts := make([]string, len(r))
		for j, v := range r {
			parts[j] = v.String()
		}
		out[i] = "[" + strings.Join(parts, " ") + "]"
	}
	sort.Strings(out)
	return out
}

func expectQuery(t *testing.T, e *Engine, query string, want ...string) {
	t.Helper()
	res, err := e.Query(query)
	if err != nil {
		t.Fatalf("query %q: %v", query, err)
	}
	got := renderRows(res)
	sort.Strings(want)
	if len(got) != len(want) {
		t.Fatalf("query %q: got %v, want %v", query, got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Errorf("query %q row %d: got %s, want %s", query, i, got[i], want[i])
		}
	}
}

func newTestEngine(t *testing.T) *Engine {
	t.Helper()
	e := New()
	e.MustExec(`CREATE WAREHOUSE wh`)
	return e
}

func TestBasicTableLifecycle(t *testing.T) {
	e := newTestEngine(t)
	e.MustExec(`CREATE TABLE t (a INT, b TEXT)`)
	e.MustExec(`INSERT INTO t VALUES (1, 'x'), (2, 'y')`)
	expectQuery(t, e, `SELECT a, b FROM t`, "[1 x]", "[2 y]")

	res := e.MustExec(`UPDATE t SET b = 'z' WHERE a = 2`)
	if res.RowsAffected != 1 {
		t.Errorf("update affected %d", res.RowsAffected)
	}
	expectQuery(t, e, `SELECT b FROM t WHERE a = 2`, "[z]")

	res = e.MustExec(`DELETE FROM t WHERE a = 1`)
	if res.RowsAffected != 1 {
		t.Errorf("delete affected %d", res.RowsAffected)
	}
	expectQuery(t, e, `SELECT count(*) FROM t`, "[1]")
}

func TestDynamicTableCreateAndInitialize(t *testing.T) {
	e := newTestEngine(t)
	e.MustExec(`CREATE TABLE sales (region INT, amount INT)`)
	e.MustExec(`INSERT INTO sales VALUES (1, 10), (1, 20), (2, 5)`)
	e.MustExec(`CREATE DYNAMIC TABLE totals TARGET_LAG = '1 minute' WAREHOUSE = wh
	            AS SELECT region, sum(amount) total FROM sales GROUP BY region`)

	// Synchronous initialization: queryable immediately.
	expectQuery(t, e, `SELECT region, total FROM totals`, "[1 30]", "[2 5]")

	status, err := e.Describe("totals")
	if err != nil {
		t.Fatal(err)
	}
	if status.EffectiveMode != "INCREMENTAL" {
		t.Errorf("mode: %s", status.EffectiveMode)
	}
	if err := e.CheckDVS("totals"); err != nil {
		t.Errorf("DVS after init: %v", err)
	}
}

func TestIncrementalRefreshViaScheduler(t *testing.T) {
	e := newTestEngine(t)
	e.MustExec(`CREATE TABLE sales (region INT, amount INT)`)
	e.MustExec(`INSERT INTO sales VALUES (1, 10)`)
	e.MustExec(`CREATE DYNAMIC TABLE totals TARGET_LAG = '1 minute' WAREHOUSE = wh
	            AS SELECT region, sum(amount) total FROM sales GROUP BY region`)

	e.MustExec(`INSERT INTO sales VALUES (1, 5), (2, 7)`)
	e.AdvanceTime(2 * time.Minute)
	if err := e.RunScheduler(); err != nil {
		t.Fatal(err)
	}
	expectQuery(t, e, `SELECT region, total FROM totals`, "[1 15]", "[2 7]")
	if err := e.CheckDVS("totals"); err != nil {
		t.Errorf("DVS: %v", err)
	}

	// The refresh should have been INCREMENTAL.
	status, _ := e.Describe("totals")
	sawIncremental := false
	for _, rec := range status.History {
		if rec.Action == core.ActionIncremental {
			sawIncremental = true
		}
	}
	if !sawIncremental {
		t.Errorf("expected an INCREMENTAL refresh, history: %+v", status.History)
	}
}

func TestNoDataRefresh(t *testing.T) {
	e := newTestEngine(t)
	e.MustExec(`CREATE TABLE t (a INT)`)
	e.MustExec(`INSERT INTO t VALUES (1)`)
	e.MustExec(`CREATE DYNAMIC TABLE d TARGET_LAG = '1 minute' WAREHOUSE = wh
	            AS SELECT a FROM t`)

	// No source changes: scheduled refreshes must be NO_DATA.
	e.AdvanceTime(5 * time.Minute)
	if err := e.RunScheduler(); err != nil {
		t.Fatal(err)
	}
	status, _ := e.Describe("d")
	noData := 0
	for _, rec := range status.History {
		if rec.Action == core.ActionNoData {
			noData++
		}
	}
	if noData == 0 {
		t.Errorf("expected NO_DATA refreshes, history: %+v", status.History)
	}
	// NO_DATA still advances the data timestamp (§3.3.2).
	if status.DataTimestamp.Equal(DefaultOrigin) {
		t.Error("data timestamp did not advance")
	}
	// And consumes no warehouse compute.
	wh, _ := e.Warehouses().Get("wh")
	jobs := wh.Jobs()
	for _, j := range jobs {
		if j.Rows == 0 && j.Label == "d" && j.End.Sub(j.Start) > 3*time.Second {
			t.Errorf("NO_DATA refresh consumed compute: %+v", j)
		}
	}
}

func TestListing1Pipeline(t *testing.T) {
	e := newTestEngine(t)
	e.MustExec(`CREATE WAREHOUSE trains_wh`)
	e.MustExec(`CREATE TABLE trains (id INT, name TEXT)`)
	e.MustExec(`CREATE TABLE train_events (type TEXT, payload VARIANT)`)
	e.MustExec(`CREATE TABLE schedule (id INT, expected_arrival_time TIMESTAMP)`)

	e.MustExec(`INSERT INTO trains VALUES (7, 'Express'), (8, 'Local')`)
	e.MustExec(`INSERT INTO schedule VALUES (3, '2025-04-01 10:00:00'), (4, '2025-04-01 11:00:00')`)
	e.MustExec(`INSERT INTO train_events VALUES
		('ARRIVAL', '{"train_id": 7, "time": "2025-04-01 10:17:00", "schedule_id": 3}'),
		('DEPARTURE', '{"train_id": 7, "time": "2025-04-01 10:30:00", "schedule_id": 3}'),
		('ARRIVAL', '{"train_id": 8, "time": "2025-04-01 11:02:00", "schedule_id": 4}')`)

	// Listing 1, DT 1 (TARGET_LAG = DOWNSTREAM).
	e.MustExec(`CREATE DYNAMIC TABLE train_arrivals
		TARGET_LAG = DOWNSTREAM
		WAREHOUSE = trains_wh
		AS SELECT
			t.id train_id,
			e.payload:time::timestamp arrival_time,
			e.payload:schedule_id::int schedule_id
		FROM train_events e
		JOIN trains t ON e.payload:train_id::int = t.id
		WHERE e.type = 'ARRIVAL'`)

	// Listing 1, DT 2.
	e.MustExec(`CREATE DYNAMIC TABLE delayed_trains
		TARGET_LAG = '1 minute'
		WAREHOUSE = trains_wh
		AS SELECT train_id,
			date_trunc(hour, s.expected_arrival_time) hour,
			count_if(arrival_time - s.expected_arrival_time > '10 minutes') num_delays
		FROM train_arrivals a
		JOIN schedule s ON a.schedule_id = s.id
		GROUP BY ALL`)

	expectQuery(t, e, `SELECT train_id, num_delays FROM delayed_trains`,
		"[7 1]", "[8 0]")

	// A late arrival lands; the pipeline catches up incrementally.
	e.MustExec(`INSERT INTO train_events VALUES
		('ARRIVAL', '{"train_id": 8, "time": "2025-04-01 11:30:00", "schedule_id": 4}')`)
	e.AdvanceTime(2 * time.Minute)
	if err := e.RunScheduler(); err != nil {
		t.Fatal(err)
	}
	expectQuery(t, e, `SELECT train_id, num_delays FROM delayed_trains`,
		"[7 1]", "[8 1]")

	for _, name := range []string{"train_arrivals", "delayed_trains"} {
		if err := e.CheckDVS(name); err != nil {
			t.Errorf("DVS %s: %v", name, err)
		}
	}
}

func TestDownstreamLagPropagation(t *testing.T) {
	e := newTestEngine(t)
	e.MustExec(`CREATE TABLE t (a INT)`)
	e.MustExec(`CREATE DYNAMIC TABLE up TARGET_LAG = DOWNSTREAM WAREHOUSE = wh AS SELECT a FROM t`)
	e.MustExec(`CREATE DYNAMIC TABLE down TARGET_LAG = '4 minutes' WAREHOUSE = wh AS SELECT a FROM up`)

	_, upDT, err := e.dynamicTable("up")
	if err != nil {
		t.Fatal(err)
	}
	_, downDT, _ := e.dynamicTable("down")

	if lag := e.sch.EffectiveLag(upDT); lag != 4*time.Minute {
		t.Errorf("upstream effective lag = %v, want 4m", lag)
	}
	// Periods align: upstream period divides downstream period.
	pu, pd := e.sch.Period(upDT), e.sch.Period(downDT)
	if pd%pu != 0 {
		t.Errorf("periods misaligned: up %v down %v", pu, pd)
	}
}

func TestChainedCreationReusesInitTimestamp(t *testing.T) {
	// §3.1.2: creating DTs in dependency order must not refresh upstream
	// tables again per downstream creation.
	e := newTestEngine(t)
	e.MustExec(`CREATE TABLE base (a INT)`)
	e.MustExec(`INSERT INTO base VALUES (1)`)
	e.MustExec(`CREATE DYNAMIC TABLE d1 TARGET_LAG = '10 minutes' WAREHOUSE = wh AS SELECT a FROM base`)
	_, d1, _ := e.dynamicTable("d1")
	refreshesAfterD1 := len(d1.History())

	e.MustExec(`CREATE DYNAMIC TABLE d2 TARGET_LAG = '10 minutes' WAREHOUSE = wh AS SELECT a FROM d1`)
	e.MustExec(`CREATE DYNAMIC TABLE d3 TARGET_LAG = '10 minutes' WAREHOUSE = wh AS SELECT a FROM d2`)

	// d1 must not have refreshed again: d2/d3 initialize at d1's data ts.
	if got := len(d1.History()); got != refreshesAfterD1 {
		t.Errorf("creating downstream DTs refreshed upstream: %d -> %d records", refreshesAfterD1, got)
	}
	_, d3, _ := e.dynamicTable("d3")
	if !d3.DataTimestamp().Equal(d1.DataTimestamp()) {
		t.Errorf("d3 initialized at %v, want %v (reuse upstream ts)", d3.DataTimestamp(), d1.DataTimestamp())
	}
	// The counterintuitive consequence: a DT created at t may have data
	// timestamp t' < t.
	if d3.DataTimestamp().After(e.Now()) {
		t.Error("data timestamp in the future")
	}
}

func TestFullRefreshModeForScalarAggregate(t *testing.T) {
	e := newTestEngine(t)
	e.MustExec(`CREATE TABLE t (a INT)`)
	e.MustExec(`INSERT INTO t VALUES (1), (2)`)
	// Scalar aggregate → AUTO resolves to FULL (§3.3.2).
	e.MustExec(`CREATE DYNAMIC TABLE d TARGET_LAG = '1 minute' WAREHOUSE = wh
	            AS SELECT count(*) c FROM t`)
	status, _ := e.Describe("d")
	if status.EffectiveMode != "FULL" {
		t.Errorf("scalar aggregate should force FULL mode, got %s", status.EffectiveMode)
	}
	expectQuery(t, e, `SELECT c FROM d`, "[2]")

	e.MustExec(`INSERT INTO t VALUES (3)`)
	e.AdvanceTime(2 * time.Minute)
	if err := e.RunScheduler(); err != nil {
		t.Fatal(err)
	}
	expectQuery(t, e, `SELECT c FROM d`, "[3]")

	// Declared INCREMENTAL on such a query is rejected.
	_, err := e.Exec(`CREATE DYNAMIC TABLE d2 TARGET_LAG = '1 minute' WAREHOUSE = wh
	                  REFRESH_MODE = INCREMENTAL AS SELECT count(*) c FROM t`)
	if err == nil {
		t.Error("INCREMENTAL mode on a scalar aggregate must be rejected")
	}
}

func TestQueryUninitializedDTFails(t *testing.T) {
	e := newTestEngine(t)
	e.MustExec(`CREATE TABLE t (a INT)`)
	e.MustExec(`CREATE DYNAMIC TABLE d TARGET_LAG = '1 minute' WAREHOUSE = wh
	            INITIALIZE = ON_SCHEDULE AS SELECT a FROM t`)
	if _, err := e.Query(`SELECT * FROM d`); err == nil {
		t.Error("querying an uninitialized DT must fail (§3.1)")
	}
	// The scheduler initializes it.
	e.AdvanceTime(2 * time.Minute)
	if err := e.RunScheduler(); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Query(`SELECT * FROM d`); err != nil {
		t.Errorf("query after scheduled init: %v", err)
	}
}

func TestErrorCounterAndAutoSuspend(t *testing.T) {
	e := newTestEngine(t)
	e.MustExec(`CREATE TABLE t (a INT)`)
	e.MustExec(`INSERT INTO t VALUES (1)`)
	e.MustExec(`CREATE DYNAMIC TABLE d TARGET_LAG = '1 minute' WAREHOUSE = wh
	            AS SELECT 10 / a q FROM t`)

	// Division by zero arrives.
	e.MustExec(`INSERT INTO t VALUES (0)`)
	_, dt, _ := e.dynamicTable("d")
	for i := 0; i < core.MaxConsecutiveErrors; i++ {
		e.AdvanceTime(2 * time.Minute)
		_ = e.RunScheduler()
	}
	if dt.State() != core.StateSuspended {
		t.Errorf("DT should auto-suspend after %d consecutive errors, state=%s errors=%d",
			core.MaxConsecutiveErrors, dt.State(), dt.ErrorCount())
	}

	// Fix the data, resume: refreshes pick up from where they left off.
	e.MustExec(`DELETE FROM t WHERE a = 0`)
	e.MustExec(`ALTER DYNAMIC TABLE d RESUME`)
	e.AdvanceTime(2 * time.Minute)
	if err := e.RunScheduler(); err != nil {
		t.Fatal(err)
	}
	expectQuery(t, e, `SELECT q FROM d`, "[10]")
	if err := e.CheckDVS("d"); err != nil {
		t.Errorf("DVS after recovery: %v", err)
	}
}

func TestUpstreamReplaceTriggersReinitialize(t *testing.T) {
	e := newTestEngine(t)
	e.MustExec(`CREATE TABLE t (a INT)`)
	e.MustExec(`INSERT INTO t VALUES (1)`)
	e.MustExec(`CREATE DYNAMIC TABLE d TARGET_LAG = '1 minute' WAREHOUSE = wh
	            AS SELECT a FROM t`)

	// Replace the base table entirely (generation bump, §5.4).
	e.MustExec(`CREATE OR REPLACE TABLE t (a INT)`)
	e.MustExec(`INSERT INTO t VALUES (42)`)
	e.AdvanceTime(2 * time.Minute)
	if err := e.RunScheduler(); err != nil {
		t.Fatal(err)
	}
	expectQuery(t, e, `SELECT a FROM d`, "[42]")

	_, dt, _ := e.dynamicTable("d")
	sawReinit := false
	for _, rec := range dt.History() {
		if rec.Action == core.ActionReinitialize || rec.Action == core.ActionFull {
			sawReinit = true
		}
	}
	if !sawReinit {
		t.Errorf("upstream replace should reinitialize, history: %+v", dt.History())
	}
}

func TestDropUndropUpstreamRecovery(t *testing.T) {
	e := newTestEngine(t)
	e.MustExec(`CREATE TABLE t (a INT)`)
	e.MustExec(`INSERT INTO t VALUES (1)`)
	e.MustExec(`CREATE DYNAMIC TABLE d TARGET_LAG = '1 minute' WAREHOUSE = wh
	            AS SELECT a FROM t`)

	// Upstream precedence (§3.4): dropping t succeeds; d's refreshes fail.
	e.MustExec(`DROP TABLE t`)
	e.AdvanceTime(2 * time.Minute)
	_ = e.RunScheduler()
	_, dt, _ := e.dynamicTable("d")
	if dt.ErrorCount() == 0 {
		t.Error("refresh should fail while upstream is dropped")
	}

	// UNDROP: refreshes resume without issue (§3.4).
	e.MustExec(`UNDROP TABLE t`)
	e.MustExec(`INSERT INTO t VALUES (2)`)
	e.AdvanceTime(2 * time.Minute)
	if err := e.RunScheduler(); err != nil {
		t.Fatal(err)
	}
	expectQuery(t, e, `SELECT a FROM d`, "[1]", "[2]")
	if dt.ErrorCount() != 0 {
		t.Errorf("error counter should reset after recovery, got %d", dt.ErrorCount())
	}
}

func TestManualRefresh(t *testing.T) {
	e := newTestEngine(t)
	e.MustExec(`CREATE TABLE t (a INT)`)
	e.MustExec(`INSERT INTO t VALUES (1)`)
	e.MustExec(`CREATE DYNAMIC TABLE up TARGET_LAG = DOWNSTREAM WAREHOUSE = wh AS SELECT a FROM t`)
	e.MustExec(`CREATE DYNAMIC TABLE down TARGET_LAG = '1 hour' WAREHOUSE = wh AS SELECT a FROM up`)

	e.MustExec(`INSERT INTO t VALUES (2)`)
	e.AdvanceTime(time.Minute)
	// Manual refresh of `down` pulls `up` forward too (§3.1.2).
	if err := e.ManualRefresh("down"); err != nil {
		t.Fatal(err)
	}
	expectQuery(t, e, `SELECT a FROM down`, "[1]", "[2]")
	_, up, _ := e.dynamicTable("up")
	_, down, _ := e.dynamicTable("down")
	if !up.DataTimestamp().Equal(down.DataTimestamp()) {
		t.Errorf("manual refresh must align timestamps: up %v down %v",
			up.DataTimestamp(), down.DataTimestamp())
	}
}

func TestAlterRefreshStatement(t *testing.T) {
	e := newTestEngine(t)
	e.MustExec(`CREATE TABLE t (a INT)`)
	e.MustExec(`CREATE DYNAMIC TABLE d TARGET_LAG = '1 hour' WAREHOUSE = wh AS SELECT a FROM t`)
	e.MustExec(`INSERT INTO t VALUES (5)`)
	e.AdvanceTime(time.Minute)
	e.MustExec(`ALTER DYNAMIC TABLE d REFRESH`)
	expectQuery(t, e, `SELECT a FROM d`, "[5]")
}

func TestCloneDynamicTableAvoidsReinit(t *testing.T) {
	e := newTestEngine(t)
	e.MustExec(`CREATE TABLE t (a INT)`)
	e.MustExec(`INSERT INTO t VALUES (1)`)
	e.MustExec(`CREATE DYNAMIC TABLE d TARGET_LAG = '1 minute' WAREHOUSE = wh AS SELECT a FROM t`)
	e.MustExec(`CREATE DYNAMIC TABLE d2 CLONE d`)

	// The clone is immediately queryable with the source's contents.
	expectQuery(t, e, `SELECT a FROM d2`, "[1]")
	_, clone, _ := e.dynamicTable("d2")
	sawInit := false
	for _, rec := range clone.History() {
		if rec.Action == core.ActionInitialize {
			sawInit = true
		}
	}
	if sawInit {
		t.Error("clone should not reinitialize (§3.4)")
	}

	// Divergence: the clone refreshes independently.
	e.MustExec(`INSERT INTO t VALUES (2)`)
	e.AdvanceTime(2 * time.Minute)
	if err := e.RunScheduler(); err != nil {
		t.Fatal(err)
	}
	expectQuery(t, e, `SELECT a FROM d2`, "[1]", "[2]")
	if err := e.CheckDVS("d2"); err != nil {
		t.Errorf("clone DVS: %v", err)
	}
}

func TestCloneBaseTable(t *testing.T) {
	e := newTestEngine(t)
	e.MustExec(`CREATE TABLE t (a INT)`)
	e.MustExec(`INSERT INTO t VALUES (1)`)
	e.MustExec(`CREATE TABLE t2 CLONE t`)
	expectQuery(t, e, `SELECT a FROM t2`, "[1]")
	e.MustExec(`INSERT INTO t2 VALUES (2)`)
	expectQuery(t, e, `SELECT a FROM t`, "[1]")
	expectQuery(t, e, `SELECT a FROM t2`, "[1]", "[2]")
}

func TestViewsInPipelines(t *testing.T) {
	e := newTestEngine(t)
	e.MustExec(`CREATE TABLE t (a INT, b INT)`)
	e.MustExec(`INSERT INTO t VALUES (1, 10), (2, 20)`)
	e.MustExec(`CREATE VIEW v AS SELECT a, b FROM t WHERE a > 1`)
	e.MustExec(`CREATE DYNAMIC TABLE d TARGET_LAG = '1 minute' WAREHOUSE = wh
	            AS SELECT a, b FROM v`)
	expectQuery(t, e, `SELECT a, b FROM d`, "[2 20]")
	e.MustExec(`INSERT INTO t VALUES (3, 30)`)
	e.AdvanceTime(2 * time.Minute)
	if err := e.RunScheduler(); err != nil {
		t.Fatal(err)
	}
	expectQuery(t, e, `SELECT a, b FROM d`, "[2 20]", "[3 30]")
}

func TestRBACPrivileges(t *testing.T) {
	e := newTestEngine(t)
	e.MustExec(`CREATE TABLE t (a INT)`)
	e.MustExec(`CREATE DYNAMIC TABLE d TARGET_LAG = '1 minute' WAREHOUSE = wh AS SELECT a FROM t`)

	entry, _, _ := e.dynamicTable("d")
	tableEntry, _ := e.Catalog().Get("t")

	e.SetRole("analyst")
	if _, err := e.Query(`SELECT * FROM d`); err == nil {
		t.Error("SELECT without privilege must fail")
	}
	if err := e.ManualRefresh("d"); err == nil {
		t.Error("OPERATE without privilege must fail")
	}
	if _, err := e.Describe("d"); err == nil {
		t.Error("MONITOR without privilege must fail")
	}

	e.Catalog().Grant(entry.ID, 0 /* SELECT */, "analyst")
	e.Catalog().Grant(tableEntry.ID, 0, "analyst")
	if _, err := e.Query(`SELECT * FROM d`); err != nil {
		t.Errorf("SELECT after grant: %v", err)
	}
	e.Catalog().Grant(entry.ID, 2 /* MONITOR */, "analyst")
	if _, err := e.Describe("d"); err != nil {
		t.Errorf("MONITOR after grant: %v", err)
	}
	if err := e.ManualRefresh("d"); err == nil {
		t.Error("MONITOR must not imply OPERATE")
	}
	e.SetRole("ADMIN")
}

func TestRenameUpstreamKeepsDTWorking(t *testing.T) {
	e := newTestEngine(t)
	e.MustExec(`CREATE TABLE t (a INT)`)
	e.MustExec(`INSERT INTO t VALUES (1)`)
	e.MustExec(`CREATE DYNAMIC TABLE d TARGET_LAG = '1 minute' WAREHOUSE = wh AS SELECT a FROM t`)

	// Renaming the upstream breaks the DT's defining query binding (name
	// is gone), so refreshes fail — until a new table takes the name.
	e.MustExec(`ALTER TABLE t RENAME TO t_renamed`)
	e.AdvanceTime(2 * time.Minute)
	_ = e.RunScheduler()
	_, dt, _ := e.dynamicTable("d")
	if dt.ErrorCount() == 0 {
		t.Error("refresh should fail after upstream rename")
	}
	e.MustExec(`ALTER TABLE t_renamed RENAME TO t`)
	e.AdvanceTime(2 * time.Minute)
	if err := e.RunScheduler(); err != nil {
		t.Fatal(err)
	}
	expectQuery(t, e, `SELECT a FROM d`, "[1]")
}

func TestInsertSelectAndOverwrite(t *testing.T) {
	e := newTestEngine(t)
	e.MustExec(`CREATE TABLE src (a INT)`)
	e.MustExec(`CREATE TABLE dst (a INT)`)
	e.MustExec(`INSERT INTO src VALUES (1), (2)`)
	e.MustExec(`INSERT INTO dst SELECT a FROM src`)
	expectQuery(t, e, `SELECT a FROM dst`, "[1]", "[2]")
	e.MustExec(`INSERT OVERWRITE INTO dst VALUES (9)`)
	expectQuery(t, e, `SELECT a FROM dst`, "[9]")
}

func TestCreateTableAsSelect(t *testing.T) {
	e := newTestEngine(t)
	e.MustExec(`CREATE TABLE t (a INT)`)
	e.MustExec(`INSERT INTO t VALUES (1), (2)`)
	e.MustExec(`CREATE TABLE t2 AS SELECT a * 10 b FROM t`)
	expectQuery(t, e, `SELECT b FROM t2`, "[10]", "[20]")
}

func TestCycleRejected(t *testing.T) {
	e := newTestEngine(t)
	e.MustExec(`CREATE TABLE t (a INT)`)
	e.MustExec(`CREATE DYNAMIC TABLE d1 TARGET_LAG = '1 minute' WAREHOUSE = wh AS SELECT a FROM t`)
	// d1 reading itself is rejected by the binder/catalog cycle check.
	_, err := e.Exec(`CREATE OR REPLACE DYNAMIC TABLE d1 TARGET_LAG = '1 minute' WAREHOUSE = wh AS SELECT a FROM d1`)
	if err == nil {
		t.Error("self-referencing DT must be rejected")
	}
}

func TestTargetLagMinimum(t *testing.T) {
	e := newTestEngine(t)
	e.MustExec(`CREATE TABLE t (a INT)`)
	_, err := e.Exec(`CREATE DYNAMIC TABLE d TARGET_LAG = '30 seconds' WAREHOUSE = wh AS SELECT a FROM t`)
	if err == nil {
		t.Error("sub-minute target lag must be rejected (§3.2)")
	}
}

func TestMissingWarehouseRejected(t *testing.T) {
	e := New()
	e.MustExec(`CREATE TABLE t (a INT)`)
	_, err := e.Exec(`CREATE DYNAMIC TABLE d TARGET_LAG = '1 minute' WAREHOUSE = nope AS SELECT a FROM t`)
	if err == nil {
		t.Error("missing warehouse must be rejected")
	}
}

func TestSkipsUnderOverload(t *testing.T) {
	e := New(WithCostModel(warehouseCostSlow()))
	e.MustExec(`CREATE WAREHOUSE wh`)
	e.MustExec(`CREATE TABLE t (a INT)`)
	for i := 0; i < 50; i++ {
		e.MustExec(`INSERT INTO t VALUES (1)`)
	}
	e.MustExec(`CREATE DYNAMIC TABLE d TARGET_LAG = '2 minutes' WAREHOUSE = wh
	            REFRESH_MODE = FULL AS SELECT a FROM t`)
	// Every refresh takes longer than the refresh period; later fires
	// must skip, and the next refresh covers the gap (§3.3.3).
	for i := 0; i < 6; i++ {
		e.MustExec(`INSERT INTO t VALUES (2)`)
		e.AdvanceTime(90 * time.Second)
		_ = e.RunScheduler()
	}
	if e.Scheduler().Stats().Skips == 0 {
		t.Errorf("expected skips under overload: %+v", e.Scheduler().Stats())
	}
	if err := e.CheckDVS("d"); err != nil {
		t.Errorf("DVS after skips: %v", err)
	}
}

func TestDVSOracleAfterRandomDML(t *testing.T) {
	e := newTestEngine(t)
	e.MustExec(`CREATE TABLE t (a INT, b INT)`)
	e.MustExec(`CREATE DYNAMIC TABLE d TARGET_LAG = '1 minute' WAREHOUSE = wh
	            AS SELECT b, count(*) c, sum(a) s FROM t GROUP BY b`)
	stmts := []string{
		`INSERT INTO t VALUES (1, 1), (2, 1), (3, 2)`,
		`UPDATE t SET a = a + 10 WHERE b = 1`,
		`DELETE FROM t WHERE a > 11`,
		`INSERT INTO t VALUES (5, 3)`,
		`UPDATE t SET b = 2 WHERE b = 3`,
		`DELETE FROM t WHERE b = 2`,
	}
	for _, stmt := range stmts {
		e.MustExec(stmt)
		e.AdvanceTime(2 * time.Minute)
		if err := e.RunScheduler(); err != nil {
			t.Fatal(err)
		}
		if err := e.CheckDVS("d"); err != nil {
			t.Fatalf("after %q: %v", stmt, err)
		}
	}
}

// warehouseCostSlow returns a cost model that makes refreshes slow enough
// to overlap a 48-second canonical period.
func warehouseCostSlow() warehouse.CostModel {
	return warehouse.CostModel{Fixed: 200 * time.Second, PerRow: 10 * time.Millisecond}
}

func TestReclusterIsDataEquivalent(t *testing.T) {
	e := newTestEngine(t)
	e.MustExec(`CREATE TABLE t (a INT)`)
	e.MustExec(`INSERT INTO t VALUES (1), (2)`)
	e.MustExec(`CREATE DYNAMIC TABLE d TARGET_LAG = '1 minute' WAREHOUSE = wh
	            AS SELECT a FROM t`)

	// Background maintenance rewrites storage without changing contents;
	// the next refresh must be NO_DATA (§5.5.2).
	if err := e.Recluster("t"); err != nil {
		t.Fatal(err)
	}
	e.AdvanceTime(time.Minute)
	if err := e.ManualRefresh("d"); err != nil {
		t.Fatal(err)
	}
	dt, _ := e.DynamicTableHandle("d")
	rec, _ := dt.LastRecord()
	if rec.Action != core.ActionNoData {
		t.Errorf("refresh after recluster should be NO_DATA, got %s", rec.Action)
	}
	expectQuery(t, e, `SELECT a FROM d`, "[1]", "[2]")

	// Reclustering a DT's storage is not allowed through this API.
	if err := e.Recluster("d"); err == nil {
		t.Error("reclustering a dynamic table must be rejected")
	}
}

func TestSwapTablesUnderDT(t *testing.T) {
	e := newTestEngine(t)
	e.MustExec(`CREATE TABLE blue (a INT)`)
	e.MustExec(`CREATE TABLE green (a INT)`)
	e.MustExec(`INSERT INTO blue VALUES (1)`)
	e.MustExec(`INSERT INTO green VALUES (100)`)
	e.MustExec(`CREATE DYNAMIC TABLE d TARGET_LAG = '1 minute' WAREHOUSE = wh
	            AS SELECT a FROM blue`)
	// Blue/green swap: the DT's defining query now resolves to the other
	// table's contents; the refresh reinitializes (different entry ID in
	// the dependency set).
	e.MustExec(`ALTER TABLE blue SWAP WITH green`)
	e.AdvanceTime(2 * time.Minute)
	if err := e.RunScheduler(); err != nil {
		t.Fatal(err)
	}
	expectQuery(t, e, `SELECT a FROM d`, "[100]")
	if err := e.CheckDVS("d"); err != nil {
		t.Errorf("DVS after swap: %v", err)
	}
}

func TestSetTargetLagChangesSchedule(t *testing.T) {
	e := newTestEngine(t)
	e.MustExec(`CREATE TABLE t (a INT)`)
	e.MustExec(`CREATE DYNAMIC TABLE d TARGET_LAG = '1 hour' WAREHOUSE = wh AS SELECT a FROM t`)
	dt, _ := e.DynamicTableHandle("d")
	before := e.Scheduler().Period(dt)
	e.MustExec(`ALTER DYNAMIC TABLE d SET TARGET_LAG = '2 minutes'`)
	after := e.Scheduler().Period(dt)
	if after >= before {
		t.Errorf("shrinking the lag must shrink the period: %v -> %v", before, after)
	}
}

func TestExecScriptStopsAtError(t *testing.T) {
	e := newTestEngine(t)
	results, err := e.ExecScript(`
		CREATE TABLE ok (a INT);
		INSERT INTO missing VALUES (1);
		CREATE TABLE never (a INT);
	`)
	if err == nil {
		t.Fatal("script error not reported")
	}
	if len(results) != 1 {
		t.Errorf("results before error: %d", len(results))
	}
	if e.Catalog().Exists("never") {
		t.Error("statements after the error must not run")
	}
}

func TestDDLLogRecordsEngineActivity(t *testing.T) {
	e := newTestEngine(t)
	e.MustExec(`CREATE TABLE t (a INT)`)
	e.MustExec(`CREATE DYNAMIC TABLE d TARGET_LAG = '1 minute' WAREHOUSE = wh AS SELECT a FROM t`)
	e.MustExec(`ALTER TABLE t RENAME TO t2`)
	log := e.Catalog().DDLLogSince(0)
	ops := map[string]int{}
	for _, rec := range log {
		ops[rec.Op]++
	}
	if ops["CREATE"] < 3 || ops["RENAME"] != 1 {
		t.Errorf("DDL log: %v", ops)
	}
}

func TestDescribeAfterOrderByLimitDT(t *testing.T) {
	// FULL-mode DTs with ORDER BY / LIMIT maintain a stable top-k.
	e := newTestEngine(t)
	e.MustExec(`CREATE TABLE scores (player INT, score INT)`)
	e.MustExec(`INSERT INTO scores VALUES (1, 10), (2, 30), (3, 20)`)
	e.MustExec(`CREATE DYNAMIC TABLE top2 TARGET_LAG = '1 minute' WAREHOUSE = wh
	            AS SELECT player, score FROM scores ORDER BY score DESC LIMIT 2`)
	expectQuery(t, e, `SELECT player FROM top2`, "[2]", "[3]")
	e.MustExec(`INSERT INTO scores VALUES (4, 99)`)
	e.AdvanceTime(2 * time.Minute)
	if err := e.RunScheduler(); err != nil {
		t.Fatal(err)
	}
	expectQuery(t, e, `SELECT player FROM top2`, "[4]", "[2]")
	if err := e.CheckDVS("top2"); err != nil {
		t.Errorf("DVS for full-mode top-k: %v", err)
	}
}

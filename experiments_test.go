package dyntables

import (
	"testing"
	"time"

	"dyntables/internal/core"
	"dyntables/internal/workload"
)

// These tests assert the *shape* properties of every experiment: who wins,
// by roughly what factor, and where crossovers fall (DESIGN.md §3).

func TestLagSawtoothShape(t *testing.T) {
	res, err := RunLagSawtooth(10*time.Minute, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) < 10 {
		t.Fatalf("too few sawtooth points: %d", len(res.Points))
	}
	for i, p := range res.Points {
		// Peak exceeds trough (the sawtooth drop at each commit).
		if p.PeakLag < p.TroughLag {
			t.Errorf("point %d: peak %v < trough %v", i, p.PeakLag, p.TroughLag)
		}
		if p.TroughLag < 0 {
			t.Errorf("point %d: negative trough %v", i, p.TroughLag)
		}
		// The scheduler keeps peak lag within the target (steady state).
		if i > 0 && p.PeakLag > res.TargetLag {
			t.Errorf("point %d: peak lag %v exceeds target %v", i, p.PeakLag, res.TargetLag)
		}
		// Peak ≈ trough + period (lag rises 1s/s between commits).
		if i > 0 {
			rise := p.PeakLag - res.Points[i-1].TroughLag
			drift := rise - res.Period
			if drift < -res.Period/2 || drift > res.Period/2 {
				t.Errorf("point %d: rise %v far from period %v", i, rise, res.Period)
			}
		}
	}
}

func TestFleetStatisticsShape(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet simulation in -short mode")
	}
	cfg := DefaultFleetConfig
	cfg.DTs = 40
	cfg.Hours = 4
	res, err := RunFleet(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Created != cfg.DTs {
		t.Fatalf("created %d of %d DTs", res.Created, cfg.DTs)
	}

	// Figure 5 shape.
	under5m := workload.LagShare(res.Lags, 0, 5*time.Minute)
	over16h := workload.LagShare(res.Lags, 16*time.Hour, 1<<62)
	if under5m < 0.05 || under5m > 0.40 {
		t.Errorf("share under 5m = %.2f, want ≈0.18", under5m)
	}
	if over16h < 0.10 || over16h > 0.45 {
		t.Errorf("share ≥16h = %.2f, want ≈0.26", over16h)
	}

	// §6.3: most DTs incremental (paper: ~70%).
	if res.IncrementalModeShare < 0.5 {
		t.Errorf("incremental share %.2f, want majority", res.IncrementalModeShare)
	}

	// §6.3: NO_DATA dominates refreshes (paper: >90%).
	if s := res.ActionShare(core.ActionNoData); s < 0.6 {
		t.Errorf("NO_DATA share %.2f, want dominant", s)
	}

	// Figure 6: joins and aggregates common among definitions.
	if res.OperatorCounts["Filter"] == 0 || res.OperatorCounts["Aggregate"] == 0 {
		t.Errorf("operator counts: %v", res.OperatorCounts)
	}
	inner := res.OperatorCounts["InnerJoin"]
	outer := res.OperatorCounts["OuterJoin"]
	if inner+outer == 0 || outer > inner {
		t.Errorf("join mix off: inner=%d outer=%d", inner, outer)
	}

	// §6.3 change volume: small changes dominate incremental refreshes.
	if len(res.ChangeFractions) > 5 {
		small := res.ChangeFractionShare(0, 0.01)
		large := res.ChangeFractionShare(0.10, 1e9)
		if small <= large {
			t.Errorf("small-change refreshes (%.2f) should outnumber large (%.2f)", small, large)
		}
	}
	if res.Credits <= 0 {
		t.Error("no warehouse spend recorded")
	}
}

func TestCrossoverShape(t *testing.T) {
	points, err := RunCrossover(4000, []float64{0.001, 0.01, 0.10, 0.50, 1.0})
	if err != nil {
		t.Fatal(err)
	}
	// Low churn: incremental wins by a wide margin.
	lo := points[0]
	if lo.IncrementalWork*5 > lo.FullWork {
		t.Errorf("at %.3f churn incremental (%d) should be ≪ full (%d)",
			lo.ChurnFraction, lo.IncrementalWork, lo.FullWork)
	}
	// High churn: full refresh is at least competitive.
	hi := points[len(points)-1]
	if hi.IncrementalWork < hi.FullWork {
		t.Errorf("at full churn incremental (%d) should not beat full (%d)",
			hi.IncrementalWork, hi.FullWork)
	}
	// Incremental work grows monotonically with churn (linear variable
	// cost, §3.3.2).
	for i := 1; i < len(points); i++ {
		if points[i].IncrementalWork < points[i-1].IncrementalWork {
			t.Errorf("incremental work not monotone: %v", points)
		}
	}
}

func TestInitStrategyQuadraticVsLinear(t *testing.T) {
	res, err := RunInitStrategy(6)
	if err != nil {
		t.Fatal(err)
	}
	if res.ReuseCount != res.Depth {
		t.Errorf("reuse strategy: %d refreshes for depth %d (want equal)", res.ReuseCount, res.Depth)
	}
	// Naive: sum over i of i refreshes ≈ d(d+1)/2.
	expectedNaive := res.Depth * (res.Depth + 1) / 2
	if res.NaiveCount < expectedNaive-res.Depth {
		t.Errorf("naive strategy: %d refreshes, want ≈%d (quadratic)", res.NaiveCount, expectedNaive)
	}
	if res.NaiveCount <= res.ReuseCount {
		t.Errorf("naive (%d) must exceed reuse (%d)", res.NaiveCount, res.ReuseCount)
	}
}

func TestSkipExperimentShape(t *testing.T) {
	res, err := RunSkipExperiment(2)
	if err != nil {
		t.Fatal(err)
	}
	if res.WithSkips.Skips == 0 {
		t.Errorf("overloaded DT should skip: %+v", res.WithSkips)
	}
	if !res.WithSkips.DVSHolds || !res.WithoutSkips.DVSHolds {
		t.Error("DVS must hold under both policies")
	}
	// Skipping reduces total refreshes and billed time (fixed costs).
	if res.WithSkips.Refreshes >= res.WithoutSkips.Refreshes {
		t.Errorf("skips should reduce refresh count: %d vs %d",
			res.WithSkips.Refreshes, res.WithoutSkips.Refreshes)
	}
	if res.WithSkips.Billed >= res.WithoutSkips.Billed {
		t.Errorf("skips should reduce billed time: %v vs %v",
			res.WithSkips.Billed, res.WithoutSkips.Billed)
	}
}

func TestAlignmentShape(t *testing.T) {
	res, err := RunAlignment(3)
	if err != nil {
		t.Fatal(err)
	}
	if res.CanonicalExtraRefreshes != 0 {
		t.Errorf("canonical periods should need no repair refreshes, got %d",
			res.CanonicalExtraRefreshes)
	}
	if res.ExactExtraRefreshes == 0 {
		t.Error("exact periods should force upstream repair refreshes")
	}
}

func TestOuterJoinAblationShape(t *testing.T) {
	points, err := RunOuterJoinAblation(4)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range points {
		if p.ExpandedSubplans <= p.DirectSubplans {
			t.Errorf("joins=%d: expansion (%d) should exceed direct (%d)",
				p.Joins, p.ExpandedSubplans, p.DirectSubplans)
		}
	}
	// Direct grows linearly; expansion super-linearly. Compare growth
	// ratios between the first and last points.
	first, last := points[0], points[len(points)-1]
	directGrowth := float64(last.DirectSubplans) / float64(first.DirectSubplans)
	expandedGrowth := float64(last.ExpandedSubplans) / float64(first.ExpandedSubplans)
	if expandedGrowth <= directGrowth {
		t.Errorf("expansion growth (%.1fx) should exceed direct growth (%.1fx)",
			expandedGrowth, directGrowth)
	}
}

func TestWindowAblationShape(t *testing.T) {
	res, err := RunWindowAblation(64, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.ChangedRecomputed != int64(res.TouchedPartitions) {
		t.Errorf("changed-partition strategy recomputed %d, want %d",
			res.ChangedRecomputed, res.TouchedPartitions)
	}
	if res.FullRecomputed < int64(res.Partitions) {
		t.Errorf("full strategy recomputed %d, want ≥%d", res.FullRecomputed, res.Partitions)
	}
}

func TestDVSOracleNoViolations(t *testing.T) {
	if testing.Short() {
		t.Skip("oracle run in -short mode")
	}
	res, err := RunDVSOracle(15, 4, 11)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) != 0 {
		t.Fatalf("DVS violations: %v", res.Violations)
	}
	if res.Checks != res.DTsChecked*res.Rounds {
		t.Errorf("checks: %d", res.Checks)
	}
}

// TestObservabilityBenchResourceFigures checks the overhead bench's
// resource-attribution figures: the enabled run meters its refreshes
// and reports coherent allocs/row and CPU/refresh, and the virtual wave
// makespan stays identical across modes.
func TestObservabilityBenchResourceFigures(t *testing.T) {
	res, err := RunObservabilityBench(4, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.WaveRegressionPct != 0 {
		t.Errorf("wave regression %.2f%%, want 0 (recording costs no virtual time)", res.WaveRegressionPct)
	}
	if res.RefreshesMetered == 0 {
		t.Fatal("enabled run metered no refreshes")
	}
	if res.AllocsPerRow < 0 {
		t.Errorf("allocs/row = %f, want >= 0", res.AllocsPerRow)
	}
	if res.CPUPerRefreshMillis <= 0 {
		t.Errorf("cpu/refresh = %fms, want > 0", res.CPUPerRefreshMillis)
	}
	if !res.IdenticalRows {
		t.Error("recording changed DT contents")
	}
}

package dyntables

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"dyntables/internal/core"
	"dyntables/internal/sql"
)

// These tests drive the adaptive REFRESH_MODE=AUTO chooser end to end:
// a join whose small dimension side churns has real change
// amplification (each changed dim row costs a snapshot scan of the fact
// side plus fanned-out output deltas), so incremental refreshes
// genuinely cost more than full recomputes at high churn and less at
// low churn — the §3.3.2 crossover.

// buildJoinFixture creates facts (4000 rows) ⋈ dims (50 rows) with an
// AUTO dynamic table over the join.
func buildJoinFixture(t *testing.T, e *Engine) {
	t.Helper()
	s := e.NewSession()
	s.MustExec(`CREATE WAREHOUSE wh`)
	s.MustExec(`CREATE TABLE facts (k INT, v INT)`)
	s.MustExec(`CREATE TABLE dims (k INT, name INT)`)
	batch := ""
	for i := 0; i < 4000; i++ {
		if batch != "" {
			batch += ", "
		}
		batch += fmt.Sprintf("(%d, %d)", i, i%97)
		if (i+1)%500 == 0 {
			s.MustExec(`INSERT INTO facts VALUES ` + batch)
			batch = ""
		}
	}
	for i := 0; i < 50; i++ {
		s.MustExec(fmt.Sprintf(`INSERT INTO dims VALUES (%d, %d)`, i, i))
	}
	s.MustExec(`CREATE DYNAMIC TABLE d TARGET_LAG = '1 hour' WAREHOUSE = wh
	            AS SELECT f.k, f.v, d.name FROM facts f JOIN dims d ON f.v % 50 = d.k`)
}

// churnDims updates the first n dim rows and refreshes d once.
func churnDims(t *testing.T, e *Engine, n int) core.RefreshRecord {
	t.Helper()
	e.MustExec(fmt.Sprintf(`UPDATE dims SET name = name + 1 WHERE k < %d`, n))
	e.AdvanceTime(time.Minute)
	if err := e.ManualRefresh("d"); err != nil {
		t.Fatal(err)
	}
	dt, err := e.DynamicTableHandle("d")
	if err != nil {
		t.Fatal(err)
	}
	rec, ok := dt.LastRecord()
	if !ok {
		t.Fatal("no refresh record")
	}
	return rec
}

func TestAdaptiveSwitchesAcrossTheCrossover(t *testing.T) {
	e := New()
	buildJoinFixture(t, e)
	dt, err := e.DynamicTableHandle("d")
	if err != nil {
		t.Fatal(err)
	}

	// Cold start: the first real refresh defaults to INCREMENTAL even
	// under heavy churn (no history to smooth over).
	rec := churnDims(t, e, 40)
	if rec.Action != core.ActionIncremental {
		t.Fatalf("cold-start refresh action = %s, want INCREMENTAL", rec.Action)
	}
	if !strings.Contains(rec.ModeReason, "cold start") {
		t.Fatalf("cold-start reason = %q", rec.ModeReason)
	}
	if rec.SourceRowsChanged != 80 || rec.FullScanEstimate == 0 {
		t.Fatalf("cost signals: changed=%d full=%d", rec.SourceRowsChanged, rec.FullScanEstimate)
	}

	// Sustained high churn: once the measured amplification is in the
	// history, the chooser switches to FULL — and only once.
	switches := 0
	var modes []sql.RefreshMode
	for i := 0; i < 4; i++ {
		rec = churnDims(t, e, 40)
		modes = append(modes, rec.EffectiveMode)
	}
	for i := 1; i < len(modes); i++ {
		if modes[i] != modes[i-1] {
			switches++
		}
	}
	if modes[len(modes)-1] != sql.RefreshFull {
		t.Fatalf("high churn modes = %v, want ending in FULL", modes)
	}
	if rec.Action != core.ActionFull {
		t.Fatalf("high-churn action = %s, want FULL", rec.Action)
	}
	if switches > 1 {
		t.Fatalf("mode flapped under steady high churn: %v", modes)
	}
	if mode, reason := dt.ModeDecision(); mode != sql.RefreshFull || !strings.Contains(reason, "adaptive") {
		t.Fatalf("decision = %s (%q), want adaptive FULL", mode, reason)
	}

	// Churn drops: the chooser switches back to INCREMENTAL using the
	// amplification learned before the FULL period.
	var back bool
	for i := 0; i < 6; i++ {
		rec = churnDims(t, e, 1)
		if rec.EffectiveMode == sql.RefreshIncremental {
			back = true
			break
		}
	}
	if !back {
		t.Fatalf("chooser never switched back to INCREMENTAL at low churn (last reason %q)", rec.ModeReason)
	}
	if err := e.CheckDVS("d"); err != nil {
		t.Fatalf("DVS violated across mode switches: %v", err)
	}
}

func TestAdaptiveDecisionIsQueryableAndExplained(t *testing.T) {
	e := New()
	buildJoinFixture(t, e)
	for i := 0; i < 3; i++ {
		churnDims(t, e, 40)
	}
	s := e.NewSession()

	// DYNAMIC_TABLE_REFRESH_HISTORY surfaces the per-refresh effective
	// mode, the reason and the chooser's cost signals.
	res, err := s.Query(`
		SELECT action, effective_mode, mode_reason, changed_rows, full_scan_rows
		FROM INFORMATION_SCHEMA.DYNAMIC_TABLE_REFRESH_HISTORY
		WHERE dt_name = 'd' AND effective_mode = 'FULL' ORDER BY data_ts`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 {
		t.Fatal("no FULL rows in refresh history after the switch")
	}
	lastReason := res.Rows[len(res.Rows)-1][2].Str()
	if !strings.Contains(lastReason, "adaptive") {
		t.Fatalf("mode_reason = %q, want an adaptive explanation", lastReason)
	}
	if res.Rows[0][3].Int() != 80 {
		t.Fatalf("changed_rows = %v, want 80", res.Rows[0][3])
	}

	// DYNAMIC_TABLES exposes the live decision.
	res, err = s.Query(`SELECT refresh_mode, declared_mode, mode_reason
	                    FROM INFORMATION_SCHEMA.DYNAMIC_TABLES WHERE name = 'd'`)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Rows[0][0].Str(); got != "FULL" {
		t.Fatalf("refresh_mode = %s, want FULL", got)
	}
	if got := res.Rows[0][1].Str(); got != "AUTO" {
		t.Fatalf("declared_mode = %s, want AUTO", got)
	}

	// EXPLAIN DYNAMIC TABLE renders the same decision.
	out, err := s.Exec(`EXPLAIN DYNAMIC TABLE d`)
	if err != nil {
		t.Fatal(err)
	}
	text := ""
	for _, row := range out.Rows {
		text += row[0].Str() + "\n"
	}
	for _, want := range []string{"declared_mode: AUTO", "effective_mode: FULL",
		"mode_reason: adaptive", "adaptive_refresh: enabled", "plan:"} {
		if !strings.Contains(text, want) {
			t.Fatalf("EXPLAIN DYNAMIC TABLE missing %q:\n%s", want, text)
		}
	}

	// Describe carries the same fields.
	st, err := s.Describe("d")
	if err != nil {
		t.Fatal(err)
	}
	if st.DeclaredMode != "AUTO" || st.EffectiveMode != "FULL" || st.ModeReason == "" {
		t.Fatalf("describe: %+v", st)
	}
}

func TestAlterSystemAdaptiveRefreshGate(t *testing.T) {
	e := New()
	buildJoinFixture(t, e)
	s := e.NewSession()

	// Disabled: AUTO keeps its static resolution under any churn.
	s.MustExec(`ALTER SYSTEM SET ADAPTIVE_REFRESH = 0`)
	if e.AdaptiveChooser().Enabled() {
		t.Fatal("gate did not disable the chooser")
	}
	for i := 0; i < 4; i++ {
		if rec := churnDims(t, e, 40); rec.Action != core.ActionIncremental {
			t.Fatalf("disabled chooser: action = %s, want INCREMENTAL", rec.Action)
		}
	}

	// Re-enable with a custom window; the history recorded while
	// disabled immediately informs the first adaptive decision.
	res := s.MustExec(`ALTER SYSTEM SET ADAPTIVE_REFRESH = 3`)
	if !strings.Contains(res.Message, "window 3") {
		t.Fatalf("message = %q", res.Message)
	}
	rec := churnDims(t, e, 40)
	if rec.EffectiveMode != sql.RefreshFull {
		t.Fatalf("re-enabled chooser: mode = %s (%s), want FULL", rec.EffectiveMode, rec.ModeReason)
	}

	if _, err := s.Exec(`ALTER SYSTEM SET ADAPTIVE_REFRESH = -1`); err == nil {
		t.Fatal("negative ADAPTIVE_REFRESH should fail")
	}

	// Disabling after a sticky FULL decision: reporting must agree with
	// what refreshes actually run (the static resolution), not the
	// dormant sticky decision — and re-enabling resumes from it.
	dt, err := e.DynamicTableHandle("d")
	if err != nil {
		t.Fatal(err)
	}
	if dt.CurrentMode() != sql.RefreshFull {
		t.Fatal("setup: no sticky FULL decision")
	}
	s.MustExec(`ALTER SYSTEM SET ADAPTIVE_REFRESH = 0`)
	if mode, reason := dt.ModeDecision(); mode != sql.RefreshIncremental || strings.Contains(reason, "adaptive") {
		t.Fatalf("disabled chooser reports %s (%q), want the static resolution", mode, reason)
	}
	if rec := churnDims(t, e, 40); rec.Action != core.ActionIncremental || rec.EffectiveMode != sql.RefreshIncremental {
		t.Fatalf("disabled chooser ran %s in mode %s", rec.Action, rec.EffectiveMode)
	}
	s.MustExec(`ALTER SYSTEM SET ADAPTIVE_REFRESH = 1`)
	if mode, _ := dt.ModeDecision(); mode != sql.RefreshFull {
		t.Fatalf("re-enabled chooser lost the sticky decision: %s", mode)
	}

	// Config-level disable.
	e2 := New(WithConfig(Config{AdaptiveWindow: -1}))
	if e2.AdaptiveChooser().Enabled() {
		t.Fatal("Config.AdaptiveWindow < 0 should disable the chooser")
	}
	e3 := New(WithConfig(Config{AdaptiveWindow: 3}))
	if !e3.AdaptiveChooser().Enabled() || e3.AdaptiveChooser().Config().Window != 3 {
		t.Fatalf("Config.AdaptiveWindow = 3: enabled=%v window=%d",
			e3.AdaptiveChooser().Enabled(), e3.AdaptiveChooser().Config().Window)
	}
}

func TestAlterRefreshModePinOverridesChooser(t *testing.T) {
	e := New()
	buildJoinFixture(t, e)
	s := e.NewSession()
	dt, err := e.DynamicTableHandle("d")
	if err != nil {
		t.Fatal(err)
	}

	// Drive the chooser to FULL, then pin back to INCREMENTAL: the pin
	// wins over the adaptive decision.
	for i := 0; i < 3; i++ {
		churnDims(t, e, 40)
	}
	if dt.CurrentMode() != sql.RefreshFull {
		t.Fatal("setup: chooser did not switch to FULL")
	}
	s.MustExec(`ALTER DYNAMIC TABLE d SET REFRESH_MODE = INCREMENTAL`)
	if mode, reason := dt.ModeDecision(); mode != sql.RefreshIncremental || reason != "declared INCREMENTAL" {
		t.Fatalf("after pin: %s (%q)", mode, reason)
	}
	if rec := churnDims(t, e, 40); rec.Action != core.ActionIncremental {
		t.Fatalf("pinned DT refreshed with %s", rec.Action)
	}

	// Back to AUTO: adaptive control resumes from a cold start and
	// switches again on the recorded high-churn history.
	s.MustExec(`ALTER DYNAMIC TABLE d SET REFRESH_MODE = AUTO`)
	if mode, _ := dt.ModeDecision(); mode != sql.RefreshIncremental {
		t.Fatalf("AUTO re-declaration mode = %s, want static INCREMENTAL", mode)
	}
	var full bool
	for i := 0; i < 3; i++ {
		if rec := churnDims(t, e, 40); rec.EffectiveMode == sql.RefreshFull {
			full = true
		}
	}
	if !full {
		t.Fatal("adaptive control did not resume after AUTO re-declaration")
	}

	// Pinning INCREMENTAL onto a non-incrementalizable query fails.
	s.MustExec(`CREATE DYNAMIC TABLE agg TARGET_LAG = '1 hour' WAREHOUSE = wh
	            AS SELECT count(*) n FROM facts`)
	if _, err := s.Exec(`ALTER DYNAMIC TABLE agg SET REFRESH_MODE = INCREMENTAL`); err == nil {
		t.Fatal("INCREMENTAL pin on a scalar aggregate should fail")
	}
}

func TestStaticReResolutionAfterUpstreamDDL(t *testing.T) {
	// Upstream DDL can make an AUTO plan non-incrementalizable after
	// creation. The refresh re-resolves to FULL, and every reporting
	// surface must agree — including dropping a sticky adaptive
	// INCREMENTAL decision made for the old plan.
	e := New()
	s := e.NewSession()
	s.MustExec(`CREATE WAREHOUSE wh`)
	s.MustExec(`CREATE TABLE facts (k INT, v INT)`)
	batch := ""
	for i := 0; i < 1200; i++ {
		if batch != "" {
			batch += ", "
		}
		batch += fmt.Sprintf("(%d, %d)", i, i%7)
		if (i+1)%400 == 0 {
			s.MustExec(`INSERT INTO facts VALUES ` + batch)
			batch = ""
		}
	}
	s.MustExec(`CREATE VIEW v AS SELECT k, v FROM facts`)
	s.MustExec(`CREATE DYNAMIC TABLE d TARGET_LAG = '1 hour' WAREHOUSE = wh
	            AS SELECT k, v FROM v`)
	refresh := func() core.RefreshRecord {
		s.MustExec(`INSERT INTO facts VALUES (9999, 1)`)
		e.AdvanceTime(time.Minute)
		if err := e.ManualRefresh("d"); err != nil {
			t.Fatal(err)
		}
		dt, err := e.DynamicTableHandle("d")
		if err != nil {
			t.Fatal(err)
		}
		rec, _ := dt.LastRecord()
		return rec
	}
	if rec := refresh(); rec.Action != core.ActionIncremental {
		t.Fatalf("setup refresh action = %s, want INCREMENTAL", rec.Action)
	}

	// Replace the view with a non-incrementalizable query (ORDER BY).
	s.MustExec(`CREATE OR REPLACE VIEW v AS SELECT k, v FROM facts ORDER BY k LIMIT 10`)
	evoRec := refresh()
	if evoRec.Action != core.ActionReinitialize {
		t.Fatalf("post-DDL refresh action = %s, want REINITIALIZE", evoRec.Action)
	}
	// The reinitialization record must not carry the just-invalidated
	// adaptive decision's reason — that decision was for the old plan.
	if strings.Contains(evoRec.ModeReason, "adaptive") {
		t.Fatalf("REINITIALIZE record carries stale adaptive reason %q", evoRec.ModeReason)
	}
	rec := refresh()
	if rec.Action != core.ActionFull || rec.EffectiveMode != sql.RefreshFull {
		t.Fatalf("refresh over non-incrementalizable plan: action=%s mode=%s", rec.Action, rec.EffectiveMode)
	}
	dt, err := e.DynamicTableHandle("d")
	if err != nil {
		t.Fatal(err)
	}
	mode, reason := dt.ModeDecision()
	if mode != sql.RefreshFull || !strings.Contains(reason, "AUTO:") || strings.Contains(reason, "adaptive") {
		t.Fatalf("reported decision = %s (%q), want static FULL re-resolution", mode, reason)
	}
}

func TestAdaptiveDecisionSurvivesRecovery(t *testing.T) {
	dir := t.TempDir()
	e, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	buildJoinFixture(t, e)
	for i := 0; i < 3; i++ {
		churnDims(t, e, 40)
	}
	dt, err := e.DynamicTableHandle("d")
	if err != nil {
		t.Fatal(err)
	}
	wantMode, wantReason := dt.ModeDecision()
	if wantMode != sql.RefreshFull {
		t.Fatal("setup: chooser did not switch to FULL before the crash")
	}

	// Crash without a final checkpoint: the decision must be replayed
	// from the frontier WAL records.
	if err := e.crash(); err != nil {
		t.Fatal(err)
	}
	e2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	dt2, err := e2.DynamicTableHandle("d")
	if err != nil {
		t.Fatal(err)
	}
	gotMode, gotReason := dt2.ModeDecision()
	if gotMode != wantMode || gotReason != wantReason {
		t.Fatalf("after WAL recovery: %s (%q), want %s (%q)", gotMode, gotReason, wantMode, wantReason)
	}
	// The recovered history keeps feeding the window: the next
	// high-churn refresh stays FULL without relearning.
	if rec := churnDims(t, e2, 40); rec.EffectiveMode != sql.RefreshFull {
		t.Fatalf("post-recovery refresh mode = %s (%s)", rec.EffectiveMode, rec.ModeReason)
	}

	// Clean close writes a checkpoint: the decision must also survive
	// the snapshot path, and the chooser must still be able to switch
	// back on recovered history alone.
	if err := e2.Close(); err != nil {
		t.Fatal(err)
	}
	e3, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer e3.Close()
	dt3, err := e3.DynamicTableHandle("d")
	if err != nil {
		t.Fatal(err)
	}
	if mode, _ := dt3.ModeDecision(); mode != sql.RefreshFull {
		t.Fatalf("after snapshot recovery: mode = %s, want FULL", mode)
	}
	var back bool
	for i := 0; i < 6; i++ {
		if rec := churnDims(t, e3, 1); rec.EffectiveMode == sql.RefreshIncremental {
			back = true
			break
		}
	}
	if !back {
		t.Fatal("recovered chooser never switched back at low churn")
	}
	if err := e3.CheckDVS("d"); err != nil {
		t.Fatal(err)
	}
}

package dyntables

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestParallelRefreshSpeedupAndEquivalence is the acceptance bar for
// DAG-wave parallel refresh execution: a wave of 8 sibling DT refreshes
// with 4 workers must compress the wave makespan at least 2x versus the
// serial refresher while producing byte-identical DT contents.
func TestParallelRefreshSpeedupAndEquivalence(t *testing.T) {
	res, err := RunParallelRefresh(8, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !res.IdenticalRows {
		t.Fatal("parallel refresh produced different DT contents than serial")
	}
	if res.Speedup < 2 {
		t.Errorf("wave speedup = %.2fx (serial %.0fms, parallel %.0fms), want >= 2x",
			res.Speedup, res.SerialWaveMillis, res.ParallelWaveMillis)
	}
	if res.ParallelLagP95Millis >= res.SerialLagP95Millis {
		t.Errorf("p95 effective lag did not improve: serial %.0fms, parallel %.0fms",
			res.SerialLagP95Millis, res.ParallelLagP95Millis)
	}
}

func TestAlterSystemKnobs(t *testing.T) {
	e := New()
	if got := e.RefreshWorkers(); got != 1 {
		t.Fatalf("default RefreshWorkers = %d, want 1 (serial)", got)
	}
	if got := e.DeltaParallelism(); got != 0 {
		t.Fatalf("default DeltaParallelism = %d, want 0", got)
	}

	res := e.MustExec(`ALTER SYSTEM SET REFRESH_WORKERS = 4`)
	if res.Kind != "ALTER SYSTEM" || !strings.Contains(res.Message, "4") {
		t.Errorf("unexpected result: %+v", res)
	}
	if got := e.RefreshWorkers(); got != 4 {
		t.Errorf("RefreshWorkers = %d after ALTER, want 4", got)
	}
	e.MustExec(`ALTER SYSTEM SET DELTA_PARALLELISM = 2`)
	if got := e.DeltaParallelism(); got != 2 {
		t.Errorf("DeltaParallelism = %d after ALTER, want 2", got)
	}
	// 0 restores the serial default, mirroring Config.RefreshWorkers.
	e.MustExec(`ALTER SYSTEM SET REFRESH_WORKERS = 0`)
	if got := e.RefreshWorkers(); got != 1 {
		t.Errorf("RefreshWorkers = %d after SET 0, want 1 (serial)", got)
	}

	if _, err := e.Exec(`ALTER SYSTEM SET REFRESH_WORKERS = -1`); err == nil {
		t.Error("negative REFRESH_WORKERS should fail")
	}
	if _, err := e.Exec(`ALTER SYSTEM SET NO_SUCH_KNOB = 1`); err == nil {
		t.Error("unknown system parameter should fail")
	}
}

func TestWithConfigWorkerResolution(t *testing.T) {
	if got := New(WithConfig(Config{RefreshWorkers: 3})).RefreshWorkers(); got != 3 {
		t.Errorf("explicit RefreshWorkers = %d, want 3", got)
	}
	if got := New(WithConfig(Config{RefreshWorkers: -1})).RefreshWorkers(); got < 1 {
		t.Errorf("host-derived RefreshWorkers = %d, want >= 1", got)
	}
	e := New(WithConfig(Config{DeltaParallelism: 4}))
	if got := e.DeltaParallelism(); got != 4 {
		t.Errorf("DeltaParallelism = %d, want 4", got)
	}
}

// TestParallelSchedulerUpholdsDVS runs a mixed DAG under a wide worker
// pool and intra-refresh parallelism and re-checks delayed view
// semantics for every DT — the §6.1 oracle under concurrency.
func TestParallelSchedulerUpholdsDVS(t *testing.T) {
	e := New(WithConfig(Config{RefreshWorkers: 4, DeltaParallelism: 2}))
	s := e.NewSession()
	s.MustExec(`CREATE WAREHOUSE wh`)
	s.MustExec(`CREATE TABLE ev (k INT, grp INT, v INT)`)
	s.MustExec(`INSERT INTO ev VALUES (1, 1, 10), (2, 2, 20), (3, 1, 30)`)
	s.MustExec(`CREATE DYNAMIC TABLE agg TARGET_LAG = '2 minutes' WAREHOUSE = wh
	            AS SELECT grp, count(*) c, sum(v) total FROM ev GROUP BY grp`)
	s.MustExec(`CREATE DYNAMIC TABLE flt TARGET_LAG = '2 minutes' WAREHOUSE = wh
	            AS SELECT k, v FROM ev WHERE v > 10`)
	s.MustExec(`CREATE DYNAMIC TABLE joined TARGET_LAG = DOWNSTREAM WAREHOUSE = wh
	            AS SELECT f.k, a.total FROM flt f JOIN agg a ON f.k = a.grp`)

	for i := 0; i < 6; i++ {
		s.MustExec(`INSERT INTO ev VALUES (4, 2, 40), (5, 3, 50)`)
		e.AdvanceTime(2 * time.Minute)
		if err := e.RunScheduler(); err != nil {
			t.Fatal(err)
		}
	}
	for _, name := range []string{"agg", "flt", "joined"} {
		if err := e.CheckDVS(name); err != nil {
			t.Errorf("DVS violated for %s under parallel execution: %v", name, err)
		}
	}
}

// TestAlterSystemErrorPaths covers the rejection paths of every ALTER
// SYSTEM knob: unknown keys, malformed values, and out-of-range numbers
// must fail without mutating engine state.
func TestAlterSystemErrorPaths(t *testing.T) {
	e := New()
	t.Cleanup(func() { e.Close() })
	bad := []struct {
		stmt string
		why  string
	}{
		{`ALTER SYSTEM SET NO_SUCH_KNOB = 1`, "unknown key"},
		{`ALTER SYSTEM SET REFRESH_WORKERS = banana`, "non-integer value"},
		{`ALTER SYSTEM SET REFRESH_WORKERS = 'four'`, "string value"},
		{`ALTER SYSTEM SET REFRESH_WORKERS = -3`, "negative workers"},
		{`ALTER SYSTEM SET DELTA_PARALLELISM = -1`, "negative parallelism"},
		{`ALTER SYSTEM SET HISTORY_CAPACITY = 0`, "zero capacity"},
		{`ALTER SYSTEM SET HISTORY_CAPACITY = -10`, "negative capacity"},
		{`ALTER SYSTEM REFRESH_WORKERS = 1`, "missing SET"},
	}
	for _, tc := range bad {
		if _, err := e.Exec(tc.stmt); err == nil {
			t.Errorf("%s (%s): expected error", tc.stmt, tc.why)
		}
	}
	// Nothing changed.
	if got := e.RefreshWorkers(); got != 1 {
		t.Errorf("RefreshWorkers mutated to %d by failing statements", got)
	}
	if got := e.DeltaParallelism(); got != 0 {
		t.Errorf("DeltaParallelism mutated to %d by failing statements", got)
	}
	if got := e.Observability().Capacity(); got != 1024 {
		t.Errorf("history capacity mutated to %d by failing statements", got)
	}
}

// TestConcurrentStatsReadersNoTornSnapshot drives the parallel refresher
// while monitoring goroutines hammer the scheduler's snapshot accessors
// and the INFORMATION_SCHEMA query path. Run under -race: the defensive
// copies must keep every reader free of torn state.
func TestConcurrentStatsReadersNoTornSnapshot(t *testing.T) {
	e := New(WithConfig(Config{RefreshWorkers: 4, DeltaParallelism: 2}))
	t.Cleanup(func() { e.Close() })
	s := e.NewSession()
	s.MustExec(`CREATE WAREHOUSE wh`)
	s.MustExec(`CREATE TABLE ev (k INT, grp INT, v INT)`)
	for i := 0; i < 4; i++ {
		s.MustExec(fmt.Sprintf(`CREATE DYNAMIC TABLE p_%d TARGET_LAG = '2 minutes' WAREHOUSE = wh
			AS SELECT grp, count(*) c FROM ev WHERE grp %% 4 = %d GROUP BY grp`, i, i))
	}

	done := make(chan struct{})
	var readers sync.WaitGroup
	for r := 0; r < 3; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			sess := e.NewSession()
			for {
				select {
				case <-done:
					return
				default:
				}
				stats := e.Scheduler().Stats()
				tallied := stats.NoData + stats.Incremental + stats.Full +
					stats.Reinit + stats.Initialize + stats.Skips + stats.Errors
				if tallied > stats.Scheduled {
					t.Errorf("torn Stats snapshot: tallied %d > scheduled %d", tallied, stats.Scheduled)
					return
				}
				for _, series := range e.Scheduler().LagSeriesAll() {
					for i := 1; i < len(series); i++ {
						if series[i].At.Before(series[i-1].At) {
							t.Error("torn LagSeriesAll snapshot: out-of-order points")
							return
						}
					}
				}
				rows, err := sess.QueryContext(context.Background(),
					`SELECT dt_name, action FROM INFORMATION_SCHEMA.DYNAMIC_TABLE_REFRESH_HISTORY`)
				if err != nil {
					t.Error(err)
					return
				}
				for rows.Next() {
				}
				rows.Close()
			}
		}()
	}

	for i := 0; i < 8; i++ {
		s.MustExec(`INSERT INTO ev VALUES (1, 0, 1), (2, 1, 2), (3, 2, 3), (4, 3, 4)`)
		e.AdvanceTime(2 * time.Minute)
		if err := e.RunScheduler(); err != nil {
			t.Fatal(err)
		}
	}
	close(done)
	readers.Wait()
}

package dyntables

import (
	"strings"
	"testing"
	"time"
)

// TestParallelRefreshSpeedupAndEquivalence is the acceptance bar for
// DAG-wave parallel refresh execution: a wave of 8 sibling DT refreshes
// with 4 workers must compress the wave makespan at least 2x versus the
// serial refresher while producing byte-identical DT contents.
func TestParallelRefreshSpeedupAndEquivalence(t *testing.T) {
	res, err := RunParallelRefresh(8, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !res.IdenticalRows {
		t.Fatal("parallel refresh produced different DT contents than serial")
	}
	if res.Speedup < 2 {
		t.Errorf("wave speedup = %.2fx (serial %.0fms, parallel %.0fms), want >= 2x",
			res.Speedup, res.SerialWaveMillis, res.ParallelWaveMillis)
	}
	if res.ParallelLagP95Millis >= res.SerialLagP95Millis {
		t.Errorf("p95 effective lag did not improve: serial %.0fms, parallel %.0fms",
			res.SerialLagP95Millis, res.ParallelLagP95Millis)
	}
}

func TestAlterSystemKnobs(t *testing.T) {
	e := New()
	if got := e.RefreshWorkers(); got != 1 {
		t.Fatalf("default RefreshWorkers = %d, want 1 (serial)", got)
	}
	if got := e.DeltaParallelism(); got != 0 {
		t.Fatalf("default DeltaParallelism = %d, want 0", got)
	}

	res := e.MustExec(`ALTER SYSTEM SET REFRESH_WORKERS = 4`)
	if res.Kind != "ALTER SYSTEM" || !strings.Contains(res.Message, "4") {
		t.Errorf("unexpected result: %+v", res)
	}
	if got := e.RefreshWorkers(); got != 4 {
		t.Errorf("RefreshWorkers = %d after ALTER, want 4", got)
	}
	e.MustExec(`ALTER SYSTEM SET DELTA_PARALLELISM = 2`)
	if got := e.DeltaParallelism(); got != 2 {
		t.Errorf("DeltaParallelism = %d after ALTER, want 2", got)
	}
	// 0 restores the serial default, mirroring Config.RefreshWorkers.
	e.MustExec(`ALTER SYSTEM SET REFRESH_WORKERS = 0`)
	if got := e.RefreshWorkers(); got != 1 {
		t.Errorf("RefreshWorkers = %d after SET 0, want 1 (serial)", got)
	}

	if _, err := e.Exec(`ALTER SYSTEM SET REFRESH_WORKERS = -1`); err == nil {
		t.Error("negative REFRESH_WORKERS should fail")
	}
	if _, err := e.Exec(`ALTER SYSTEM SET NO_SUCH_KNOB = 1`); err == nil {
		t.Error("unknown system parameter should fail")
	}
}

func TestWithConfigWorkerResolution(t *testing.T) {
	if got := New(WithConfig(Config{RefreshWorkers: 3})).RefreshWorkers(); got != 3 {
		t.Errorf("explicit RefreshWorkers = %d, want 3", got)
	}
	if got := New(WithConfig(Config{RefreshWorkers: -1})).RefreshWorkers(); got < 1 {
		t.Errorf("host-derived RefreshWorkers = %d, want >= 1", got)
	}
	e := New(WithConfig(Config{DeltaParallelism: 4}))
	if got := e.DeltaParallelism(); got != 4 {
		t.Errorf("DeltaParallelism = %d, want 4", got)
	}
}

// TestParallelSchedulerUpholdsDVS runs a mixed DAG under a wide worker
// pool and intra-refresh parallelism and re-checks delayed view
// semantics for every DT — the §6.1 oracle under concurrency.
func TestParallelSchedulerUpholdsDVS(t *testing.T) {
	e := New(WithConfig(Config{RefreshWorkers: 4, DeltaParallelism: 2}))
	s := e.NewSession()
	s.MustExec(`CREATE WAREHOUSE wh`)
	s.MustExec(`CREATE TABLE ev (k INT, grp INT, v INT)`)
	s.MustExec(`INSERT INTO ev VALUES (1, 1, 10), (2, 2, 20), (3, 1, 30)`)
	s.MustExec(`CREATE DYNAMIC TABLE agg TARGET_LAG = '2 minutes' WAREHOUSE = wh
	            AS SELECT grp, count(*) c, sum(v) total FROM ev GROUP BY grp`)
	s.MustExec(`CREATE DYNAMIC TABLE flt TARGET_LAG = '2 minutes' WAREHOUSE = wh
	            AS SELECT k, v FROM ev WHERE v > 10`)
	s.MustExec(`CREATE DYNAMIC TABLE joined TARGET_LAG = DOWNSTREAM WAREHOUSE = wh
	            AS SELECT f.k, a.total FROM flt f JOIN agg a ON f.k = a.grp`)

	for i := 0; i < 6; i++ {
		s.MustExec(`INSERT INTO ev VALUES (4, 2, 40), (5, 3, 50)`)
		e.AdvanceTime(2 * time.Minute)
		if err := e.RunScheduler(); err != nil {
			t.Fatal(err)
		}
	}
	for _, name := range []string{"agg", "flt", "joined"} {
		if err := e.CheckDVS(name); err != nil {
			t.Errorf("DVS violated for %s under parallel execution: %v", name, err)
		}
	}
}

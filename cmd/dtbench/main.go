// Command dtbench regenerates every figure and table of the paper's
// evaluation (see DESIGN.md §3 for the experiment index). Run a single
// experiment with -exp, or everything with -exp all:
//
//	dtbench -exp fig4        # lag sawtooth series
//	dtbench -exp fig5        # target-lag distribution
//	dtbench -exp fig6        # operator frequency
//	dtbench -exp actions     # refresh action mix (§6.3)
//	dtbench -exp changevol   # changed-row fraction mix (§6.3)
//	dtbench -exp cost        # incremental vs full crossover (§3.3.2)
//	dtbench -exp init        # initialization strategy (§3.1.2)
//	dtbench -exp skips       # skip-vs-queue ablation (§3.3.3)
//	dtbench -exp periods     # canonical period alignment (§5.2)
//	dtbench -exp outerjoin   # outer-join derivative ablation (§5.5.1)
//	dtbench -exp window      # window derivative ablation (§5.5.1)
//	dtbench -exp fig1 | fig2 # isolation DSGs (§4)
//	dtbench -exp oracle      # randomized DVS property test (§6.1)
//	dtbench -exp concurrent  # mixed traffic over parallel sessions
//	dtbench -exp recovery    # crash recovery time vs WAL length (emits BENCH_recovery.json)
//	dtbench -exp parallel    # DAG-wave parallel refresh execution (emits BENCH_parallel.json)
//	dtbench -exp observability # history-recording overhead on the parallel workload (emits BENCH_observability.json)
//	dtbench -exp server      # remote concurrent sessions over the HTTP cursor protocol (emits BENCH_server.json)
//
// -data DIR points experiments that exercise durability (recovery) at a
// persistent directory instead of a temp dir, so the WAL and snapshot are
// left behind for inspection.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"dyntables"
	"dyntables/internal/core"
	"dyntables/internal/isolation"
	"dyntables/internal/workload"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run (fig1,fig2,fig4,fig5,fig6,actions,changevol,cost,init,skips,periods,outerjoin,window,oracle,concurrent,recovery,parallel,observability,all)")
	dts := flag.Int("dts", dyntables.DefaultFleetConfig.DTs, "fleet size for fleet experiments")
	hours := flag.Int("hours", dyntables.DefaultFleetConfig.Hours, "simulated hours for fleet experiments")
	seed := flag.Int64("seed", 1, "random seed")
	dataDir := flag.String("data", "", "data directory for durability experiments (empty = temp dirs)")
	rounds := flag.Int("rounds", 200, "insert+refresh rounds for the recovery experiment")
	siblings := flag.Int("siblings", 8, "fan-out width for the parallel experiment")
	workers := flag.Int("workers", 4, "refresh worker-pool width for the parallel experiment")
	obsRounds := flag.Int("obsrounds", 5, "rounds per mode for the observability overhead experiment")
	sessions := flag.Int("sessions", 1000, "concurrent remote sessions for the server experiment")
	ops := flag.Int("ops", 6, "statements per remote session for the server experiment")
	p99gate := flag.Duration("p99gate", 5*time.Second, "p99 statement-latency budget for the server experiment")
	flag.Parse()

	runners := map[string]func() error{
		"fig1":       fig1,
		"fig2":       fig2,
		"fig4":       fig4,
		"fig5":       func() error { return fleetFigures(*dts, *hours, *seed, "fig5") },
		"fig6":       func() error { return fleetFigures(*dts, *hours, *seed, "fig6") },
		"actions":    func() error { return fleetFigures(*dts, *hours, *seed, "actions") },
		"changevol":  func() error { return fleetFigures(*dts, *hours, *seed, "changevol") },
		"cost":       cost,
		"init":       initStrategy,
		"skips":      skips,
		"periods":    periods,
		"outerjoin":  outerjoin,
		"window":     window,
		"oracle":     func() error { return oracle(*seed) },
		"concurrent": concurrent,
		"recovery":   func() error { return recovery(*dataDir, *rounds) },
		"parallel":   func() error { return parallel(*siblings, *workers) },
		"observability": func() error {
			return observability(*siblings, *workers, *obsRounds)
		},
		"adaptive": adaptiveExp,
		"server":   func() error { return serverBench(*sessions, *ops, *p99gate) },
	}
	order := []string{"fig1", "fig2", "fig4", "fig5", "fig6", "actions",
		"changevol", "cost", "init", "skips", "periods", "outerjoin", "window", "oracle",
		"concurrent", "recovery", "parallel", "observability", "adaptive", "server"}

	if *exp == "all" {
		for _, name := range order {
			fmt.Printf("\n================ %s ================\n", name)
			if err := runners[name](); err != nil {
				log.Fatalf("%s: %v", name, err)
			}
		}
		return
	}
	runner, ok := runners[*exp]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *exp)
		os.Exit(2)
	}
	if err := runner(); err != nil {
		log.Fatal(err)
	}
}

func fig1() error {
	h := isolation.NewHistory()
	steps := []error{
		h.Write(1, "x", 1), nil,
		h.Read(3, "x", 1), h.Write(3, "y", 3), nil,
		h.Write(2, "x", 2), nil,
		h.Read(4, "x", 2), h.Write(4, "y", 4), nil,
		h.Read(5, "y", 3), h.Read(5, "x", 2),
	}
	for _, err := range steps {
		if err != nil {
			return err
		}
	}
	for _, txn := range []int{1, 2, 3, 4, 5} {
		h.Commit(txn)
	}
	fmt.Println("Figure 1 — persisted table semantics (refreshes as transactions)")
	fmt.Println("history:", h)
	fmt.Print("DSG:\n", h.BuildDSG())
	p := h.Analyze()
	fmt.Printf("phenomena: G0=%v G1=%v G2=%v G-single=%v -> %s\n",
		p.G0, p.G1(), p.G2, p.GSingle, p.Level())
	fmt.Println("paper: 'the DSG ... reveals that this history is, in fact, serializable' — the read skew is masked")
	return nil
}

func fig2() error {
	h := isolation.NewHistory()
	if err := h.Write(1, "x", 1); err != nil {
		return err
	}
	h.Commit(1)
	if err := h.Derive(3, "y", 3, isolation.V("x", 1)); err != nil {
		return err
	}
	h.Commit(3)
	if err := h.Write(2, "x", 2); err != nil {
		return err
	}
	h.Commit(2)
	if err := h.Derive(4, "y", 4, isolation.V("x", 2)); err != nil {
		return err
	}
	h.Commit(4)
	if err := h.Read(5, "y", 3); err != nil {
		return err
	}
	if err := h.Read(5, "x", 2); err != nil {
		return err
	}
	h.Commit(5)

	fmt.Println("Figure 2 — delayed view semantics (refreshes as derivations)")
	fmt.Println("history:", h)
	fmt.Print("DSG:\n", h.BuildDSG())
	p := h.Analyze()
	fmt.Printf("phenomena: G0=%v G1=%v G2=%v G-single=%v -> %s\n",
		p.G0, p.G1(), p.G2, p.GSingle, p.Level())
	fmt.Println("paper: 'a cycle ... exhibiting phenomenon G2 (and G-single), revealing the read skew'")
	return nil
}

func fig4() error {
	res, err := dyntables.RunLagSawtooth(10*time.Minute, 2)
	if err != nil {
		return err
	}
	fmt.Printf("Figure 4 — lag sawtooth (target lag %v, chosen period %v)\n", res.TargetLag, res.Period)
	fmt.Println("commit_time           data_ts     peak_lag  trough_lag")
	for _, p := range res.Points {
		fmt.Printf("%-21s %-11s %-9s %s\n",
			p.At.Format("15:04:05"), p.DataTS.Format("15:04:05"),
			p.PeakLag.Truncate(time.Second), p.TroughLag.Truncate(time.Second))
	}
	return nil
}

func fleetFigures(dts, hours int, seed int64, which string) error {
	cfg := dyntables.DefaultFleetConfig
	cfg.DTs, cfg.Hours, cfg.Seed = dts, hours, seed
	res, err := dyntables.RunFleet(cfg)
	if err != nil {
		return err
	}
	switch which {
	case "fig5":
		fmt.Printf("Figure 5 — target lag distribution (%d DTs)\n", res.Created)
		buckets := []struct {
			name   string
			lo, hi time.Duration
		}{
			{"< 5 min (streaming)", 0, 5 * time.Minute},
			{"5 min – 1 h", 5 * time.Minute, time.Hour},
			{"1 h – 16 h", time.Hour, 16 * time.Hour},
			{">= 16 h (batch)", 16 * time.Hour, 1 << 62},
		}
		for _, b := range buckets {
			share := workload.LagShare(res.Lags, b.lo, b.hi)
			fmt.Printf("  %-22s %5.1f%%  %s\n", b.name, share*100, bar(share))
		}
		fmt.Println("paper: ~20% < 5 min, 55% in between, >25% >= 16 h")
	case "fig6":
		fmt.Printf("Figure 6 — operator frequency in %d incremental DT definitions\n", res.Created)
		for _, line := range dyntables.SortedOperatorCounts(res.OperatorCounts) {
			fmt.Println("  ", line)
		}
		fmt.Printf("  incremental-mode share: %.0f%% (paper: ~70%%)\n", res.IncrementalModeShare*100)
	case "actions":
		fmt.Printf("§6.3 — refresh action mix over %d DTs, %dh simulated\n", res.Created, hours)
		total := 0
		for _, n := range res.ActionCounts {
			total += n
		}
		for _, a := range []core.RefreshAction{core.ActionNoData, core.ActionIncremental,
			core.ActionFull, core.ActionReinitialize, core.ActionInitialize, core.ActionSkip} {
			share := res.ActionShare(a)
			fmt.Printf("  %-13s %6d  %5.1f%%  %s\n", a, res.ActionCounts[a], share*100, bar(share))
		}
		fmt.Printf("  total refreshes: %d, warehouse credits: %.3f\n", total, res.Credits)
		fmt.Println("paper: 'More than 90% of refreshes have no data'")
	case "changevol":
		fmt.Printf("§6.3 — changed-row fraction of %d incremental refreshes\n", len(res.ChangeFractions))
		buckets := []struct {
			name   string
			lo, hi float64
		}{
			{"< 1%", 0, 0.01},
			{"1% – 10%", 0.01, 0.10},
			{"> 10%", 0.10, 1e18},
		}
		for _, b := range buckets {
			share := res.ChangeFractionShare(b.lo, b.hi)
			fmt.Printf("  %-9s %5.1f%%  %s\n", b.name, share*100, bar(share))
		}
		fmt.Println("paper: 67% < 1%, 21% > 10%")
	}
	return nil
}

func cost() error {
	points, err := dyntables.RunCrossover(4000, []float64{0.001, 0.005, 0.01, 0.05, 0.10, 0.25, 0.50, 1.0})
	if err != nil {
		return err
	}
	fmt.Println("§3.3.2 — incremental vs full refresh work (4000-row source, join query)")
	fmt.Println("churn     incr_work  full_work  incr_dur  full_dur  winner")
	for _, p := range points {
		winner := "incremental"
		if p.IncrementalWork >= p.FullWork {
			winner = "full"
		}
		fmt.Printf("%6.1f%%  %9d  %9d  %8s  %8s  %s\n",
			p.ChurnFraction*100, p.IncrementalWork, p.FullWork,
			p.IncrementalDuration.Truncate(time.Millisecond),
			p.FullDuration.Truncate(time.Millisecond), winner)
	}
	fmt.Println("paper: variable costs scale linearly with changed data; full refreshes win at high churn")
	return nil
}

func initStrategy() error {
	fmt.Println("§3.1.2 — initialization refreshes for DT chains created in dependency order")
	fmt.Println("depth  reuse_ts  naive_fresh_ts")
	for _, depth := range []int{2, 4, 6, 8} {
		res, err := dyntables.RunInitStrategy(depth)
		if err != nil {
			return err
		}
		fmt.Printf("%5d  %8d  %14d\n", res.Depth, res.ReuseCount, res.NaiveCount)
	}
	fmt.Println("paper: 'the number of refreshes increases quadratically with the depth of the graph'")
	return nil
}

func skips() error {
	res, err := dyntables.RunSkipExperiment(2)
	if err != nil {
		return err
	}
	fmt.Println("§3.3.3 — overloaded DT (refresh duration > period), 2h simulated")
	fmt.Printf("  with skips:    refreshes=%-3d skips=%-3d billed=%-10s final_lag=%s dvs=%v\n",
		res.WithSkips.Refreshes, res.WithSkips.Skips,
		res.WithSkips.Billed.Truncate(time.Second), res.WithSkips.FinalLag.Truncate(time.Second),
		res.WithSkips.DVSHolds)
	fmt.Printf("  without skips: refreshes=%-3d skips=%-3d billed=%-10s final_lag=%s dvs=%v\n",
		res.WithoutSkips.Refreshes, res.WithoutSkips.Skips,
		res.WithoutSkips.Billed.Truncate(time.Second), res.WithoutSkips.FinalLag.Truncate(time.Second),
		res.WithoutSkips.DVSHolds)
	fmt.Println("paper: 'skipping a refresh reduces the total amount of work by eliminating the fixed costs'")
	return nil
}

func periods() error {
	res, err := dyntables.RunAlignment(3)
	if err != nil {
		return err
	}
	fmt.Println("§5.2 — data timestamp alignment (7m upstream, 11m downstream, 3h simulated)")
	fmt.Printf("  canonical 48·2^n periods: %d scheduled refreshes, %d upstream repairs\n",
		res.CanonicalRefreshes, res.CanonicalExtraRefreshes)
	fmt.Printf("  exact periods:            %d scheduled refreshes, %d upstream repairs\n",
		res.ExactRefreshes, res.ExactExtraRefreshes)
	fmt.Println("paper: powers-of-two periods with a shared phase guarantee aligned data timestamps")
	return nil
}

func outerjoin() error {
	points, err := dyntables.RunOuterJoinAblation(5)
	if err != nil {
		return err
	}
	fmt.Println("§5.5.1 — outer-join derivative: subplan differentiations per refresh")
	fmt.Println("left_joins  direct  expanded")
	for _, p := range points {
		fmt.Printf("%10d  %6d  %8d\n", p.Joins, p.DirectSubplans, p.ExpandedSubplans)
	}
	fmt.Println("paper: 'duplication grows exponentially with the number of outer joins'")
	return nil
}

func window() error {
	fmt.Println("§5.5.1 — window derivative: partitions recomputed per refresh")
	fmt.Println("partitions  touched  changed_strategy  full_recompute")
	for _, n := range []int{16, 64, 256} {
		res, err := dyntables.RunWindowAblation(n, 2)
		if err != nil {
			return err
		}
		fmt.Printf("%10d  %7d  %16d  %14d\n",
			res.Partitions, res.TouchedPartitions, res.ChangedRecomputed, res.FullRecomputed)
	}
	fmt.Println("paper: 'applying the window function to all partitions that have changed'")
	return nil
}

func oracle(seed int64) error {
	res, err := dyntables.RunDVSOracle(20, 5, seed)
	if err != nil {
		return err
	}
	fmt.Printf("§6.1 — randomized DVS oracle: %d DTs × %d rounds = %d checks\n",
		res.DTsChecked, res.Rounds, res.Checks)
	if len(res.Violations) == 0 {
		fmt.Println("  no violations: every DT equals its defining query at its data timestamp")
	} else {
		for _, v := range res.Violations {
			fmt.Println("  VIOLATION:", v)
		}
	}
	return nil
}

func concurrent() error {
	fmt.Println("concurrent sessions — mixed SELECT / INSERT / refresh traffic")
	fmt.Println("sessions  queries  inserts  refreshes  conflicts  elapsed")
	for _, n := range []int{1, 4, 16} {
		res, err := dyntables.RunConcurrentSessions(n, 60)
		if err != nil {
			return err
		}
		fmt.Printf("%8d  %7d  %7d  %9d  %9d  %s\n",
			res.Sessions, res.Queries, res.Inserts, res.Refreshes, res.Conflicts,
			res.Elapsed.Truncate(time.Millisecond))
	}
	fmt.Println("queries and DML run in parallel across sessions, serializing against DDL only")
	return nil
}

func recovery(dataDir string, rounds int) error {
	cadences := []int{64, 256, 1024, 1 << 20}
	points, err := dyntables.RunRecoveryBench(dataDir, rounds, cadences)
	if err != nil {
		return err
	}
	fmt.Printf("durability — crash recovery time after %d insert+refresh rounds\n", rounds)
	fmt.Println("checkpoint_every  wal_records  snapshot  versions  dt_rows  open_ms")
	for _, p := range points {
		fmt.Printf("%16d  %11d  %8v  %8d  %7d  %8.2f\n",
			p.CheckpointEvery, p.WALRecords, p.SnapshotPresent, p.Versions, p.Rows, p.OpenMillis)
	}
	out := struct {
		Experiment string                    `json:"experiment"`
		Rounds     int                       `json:"rounds"`
		Points     []dyntables.RecoveryPoint `json:"points"`
	}{Experiment: "recovery", Rounds: rounds, Points: points}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile("BENCH_recovery.json", data, 0o644); err != nil {
		return err
	}
	fmt.Println("wrote BENCH_recovery.json")
	fmt.Println("frequent checkpoints bound the WAL tail; recovery replays snapshot + tail")
	return nil
}

func parallel(siblings, workers int) error {
	res, err := dyntables.RunParallelRefresh(siblings, workers)
	if err != nil {
		return err
	}
	fmt.Printf("parallel refresh — fan-out DAG (1 base → %d siblings → 1 rollup), %d workers\n",
		res.Siblings, res.Workers)
	fmt.Println("            wave_makespan  lag_p50    lag_p95")
	fmt.Printf("  serial    %13s  %-9s  %s\n",
		time.Duration(res.SerialWaveMillis*float64(time.Millisecond)).Truncate(time.Second),
		time.Duration(res.SerialLagP50Millis*float64(time.Millisecond)).Truncate(time.Second),
		time.Duration(res.SerialLagP95Millis*float64(time.Millisecond)).Truncate(time.Second))
	fmt.Printf("  parallel  %13s  %-9s  %s\n",
		time.Duration(res.ParallelWaveMillis*float64(time.Millisecond)).Truncate(time.Second),
		time.Duration(res.ParallelLagP50Millis*float64(time.Millisecond)).Truncate(time.Second),
		time.Duration(res.ParallelLagP95Millis*float64(time.Millisecond)).Truncate(time.Second))
	fmt.Printf("  speedup: %.2fx, byte-identical contents: %v\n", res.Speedup, res.IdenticalRows)
	fmt.Println("  execution core (refresh-attributed metering, same workload columnar vs row-at-a-time):")
	fmt.Printf("            rows/sec/worker  allocs/row\n")
	fmt.Printf("  columnar  %15.0f  %10.2f\n", res.RowsPerSecPerWorker, res.AllocsPerRow)
	fmt.Printf("  legacy    %15.0f  %10.2f\n", res.LegacyRowsPerSecPerWorker, res.LegacyAllocsPerRow)
	fmt.Printf("  columnar speedup: %.2fx, alloc reduction: %.1f%%, identical contents: %v\n",
		res.ColumnarSpeedup, res.AllocReductionPct, res.LegacyIdenticalRows)
	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile("BENCH_parallel.json", data, 0o644); err != nil {
		return err
	}
	fmt.Println("wrote BENCH_parallel.json")
	fmt.Println("a wide wave pays its critical path, not the sum of its refresh costs")
	return nil
}

func observability(siblings, workers, rounds int) error {
	res, err := dyntables.RunObservabilityBench(siblings, workers, rounds)
	if err != nil {
		return err
	}
	fmt.Printf("observability — history-recording overhead on the parallel workload (%d siblings, %d workers, best of %d rounds)\n",
		res.Siblings, res.Workers, res.Rounds)
	fmt.Printf("              wave_makespan  host_ms\n")
	fmt.Printf("  disabled    %13.0f  %7.2f\n", res.BaselineWaveMillis, res.BaselineHostMillis)
	fmt.Printf("  recording   %13.0f  %7.2f\n", res.ObservedWaveMillis, res.ObservedHostMillis)
	fmt.Printf("  wave regression: %+.2f%%  host overhead: %+.2f%%\n",
		res.WaveRegressionPct, res.HostOverheadPct)
	fmt.Printf("  events recorded: %d, trace spans recorded: %d, identical DT contents: %v\n",
		res.EventsRecorded, res.SpansRecorded, res.IdenticalRows)
	fmt.Printf("  refresh-history query: %d rows streamed in %.2fms\n", res.HistoryRows, res.QueryMillis)
	fmt.Printf("  resource attribution: %d refreshes metered, %.1f allocs/row, %.3fms cpu/refresh\n",
		res.RefreshesMetered, res.AllocsPerRow, res.CPUPerRefreshMillis)
	fmt.Printf("  watchdog: %d alert evaluations, %d firings\n", res.AlertEvaluations, res.AlertFirings)
	if res.WaveRegressionPct >= 5 {
		return fmt.Errorf("observability: wave-makespan regression %.2f%% exceeds the 5%% budget", res.WaveRegressionPct)
	}
	if res.AlertEvaluations == 0 || res.AlertFirings == 0 {
		return fmt.Errorf("observability: the live alert never evaluated/fired (evaluations=%d, firings=%d)",
			res.AlertEvaluations, res.AlertFirings)
	}
	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile("BENCH_observability.json", data, 0o644); err != nil {
		return err
	}
	fmt.Println("wrote BENCH_observability.json")
	fmt.Println("recording and tracing are a few appends per refresh; the virtual wave makespan is untouched")
	return nil
}

func adaptiveExp() error {
	res, err := dyntables.RunAdaptiveBench()
	if err != nil {
		return err
	}
	fmt.Printf("adaptive refresh-mode chooser — churn ramp over facts(%d) ⋈ dims(%d), AUTO vs pinned modes\n",
		res.FactRows, res.DimRows)
	fmt.Println("regime     churn  refreshes  adaptive_work  incremental_work  full_work  vs_best  switches  final_mode")
	for _, reg := range res.Regimes {
		fmt.Printf("%-9s  %5d  %9d  %13d  %16d  %9d  %+6.1f%%  %8d  %s\n",
			reg.Name, reg.DimChurn, reg.Refreshes, reg.AdaptiveWork, reg.IncrementalWork,
			reg.FullWork, reg.AdaptiveVsBestPct, reg.Switches, reg.FinalMode)
	}
	fmt.Printf("total mode switches: %d\n", res.TotalSwitches)

	// Acceptance gates: AUTO must track the cheaper mode at both ends of
	// the ramp and must not flap.
	for _, reg := range res.Regimes {
		if reg.Switches > 1 {
			return fmt.Errorf("adaptive: %d mode switches in regime %s (hysteresis allows at most 1)",
				reg.Switches, reg.Name)
		}
	}
	for _, name := range []string{"low", "high"} {
		for _, reg := range res.Regimes {
			if reg.Name == name && reg.AdaptiveVsBestPct > 15 {
				return fmt.Errorf("adaptive: %s regime %.1f%% above the cheaper pinned mode (budget 15%%)",
					name, reg.AdaptiveVsBestPct)
			}
		}
	}

	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile("BENCH_adaptive.json", data, 0o644); err != nil {
		return err
	}
	fmt.Println("wrote BENCH_adaptive.json")
	fmt.Println("AUTO rides incremental maintenance at low churn and full recomputes past the crossover")
	return nil
}

func serverBench(sessions, ops int, p99gate time.Duration) error {
	res, err := dyntables.RunServerBench(sessions, ops)
	if res != nil {
		fmt.Printf("network server — %d remote sessions × %d mixed statements over the HTTP cursor protocol\n",
			res.Sessions, res.OpsPerSession)
		fmt.Printf("  refresher pressure: %d waves, %d refreshes executed while clients ran\n",
			res.RefreshWaves, res.RefreshesExecuted)
		fmt.Printf("  %d statements in %.0fms (%.0f ops/s), errors=%d, cursors leaked=%d\n",
			res.TotalOps, res.ElapsedMillis, res.OpsPerSec, res.Errors, res.OpenCursorsAfter)
		fmt.Printf("  latency: p50=%.1fms p95=%.1fms p99=%.1fms max=%.1fms\n",
			res.P50Millis, res.P95Millis, res.P99Millis, res.MaxMillis)
		data, merr := json.MarshalIndent(res, "", "  ")
		if merr != nil {
			return merr
		}
		if werr := os.WriteFile("BENCH_server.json", data, 0o644); werr != nil {
			return werr
		}
		fmt.Println("wrote BENCH_server.json")
	}
	if err != nil {
		return err
	}
	if gate := float64(p99gate.Microseconds()) / 1000; res.P99Millis > gate {
		return fmt.Errorf("server: p99 statement latency %.1fms exceeds the %.0fms budget", res.P99Millis, gate)
	}
	fmt.Println("a shared embedded engine serves a thousand remote cursors without stalling the refresher")
	return nil
}

func bar(share float64) string {
	n := int(share * 40)
	out := ""
	for i := 0; i < n; i++ {
		out += "█"
	}
	return out
}

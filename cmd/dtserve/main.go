// Command dtserve runs a dynamic-tables engine as a network daemon,
// serving remote concurrent sessions over the HTTP/JSON cursor protocol
// (internal/server). It opens (or creates) a durable data directory,
// ticks the refresh scheduler against the wall clock, and drains
// gracefully on SIGTERM: stop ticking, fail new requests with 503,
// finish in-flight ones, close every session and cursor, quiesce the
// refresher and write a final checkpoint — so a restart on the same
// data directory loses no committed data.
//
// Usage:
//
//	dtserve -addr 127.0.0.1:7844 -data /var/lib/dyntables
//	dtserve -auth s3cret:ADMIN -auth r0:analyst   # token auth
//	dtserve -virtual                              # virtual clock (tests)
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"dyntables"
	"dyntables/internal/server"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:7844", "listen address")
		dataDir  = flag.String("data", "", "durable data directory (empty: in-memory engine)")
		virtual  = flag.Bool("virtual", false, "virtual clock instead of wall clock (advance via /v1/admin/advance)")
		tick     = flag.Duration("tick", time.Second, "scheduler tick interval (wall-clock mode)")
		idle     = flag.Duration("idle-timeout", server.DefaultIdleTimeout, "reap sessions/statements idle this long (<0 disables)")
		workers  = flag.Int("refresh-workers", 0, "refresh worker pool size (0: serial)")
		portfile = flag.String("portfile", "", "write the bound listen address to this file (for test harnesses)")
	)
	tokens := make(map[string]string)
	flag.Func("auth", "token:ROLE pair mapping a bearer token to a role (repeatable; none: open access)", func(v string) error {
		tok, role, ok := strings.Cut(v, ":")
		if !ok || tok == "" || role == "" {
			return fmt.Errorf("want token:ROLE, got %q", v)
		}
		tokens[tok] = strings.ToUpper(role)
		return nil
	})
	flag.Parse()

	if err := run(*addr, *dataDir, *virtual, *tick, *idle, *workers, *portfile, tokens); err != nil {
		log.Fatalf("dtserve: %v", err)
	}
}

func run(addr, dataDir string, virtual bool, tick, idle time.Duration, workers int, portfile string, tokens map[string]string) error {
	opts := []dyntables.Option{dyntables.WithConfig(dyntables.Config{RefreshWorkers: workers})}
	if !virtual {
		opts = append(opts, dyntables.WithWallClock())
	}
	var eng *dyntables.Engine
	var err error
	if dataDir == "" {
		log.Printf("no -data directory: running in-memory (nothing survives restart)")
		eng = dyntables.New(opts...)
	} else if eng, err = dyntables.Open(dataDir, opts...); err != nil {
		return err
	}

	srv := server.New(server.Config{
		Backend:     dyntables.NewServerBackend(eng),
		Tokens:      tokens,
		IdleTimeout: idle,
	})

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	if portfile != "" {
		if err := os.WriteFile(portfile, []byte(ln.Addr().String()), 0o644); err != nil {
			return err
		}
	}

	// Wall-clock mode advances the schedule by real time; a ticker drives
	// the due-refresh passes. Virtual mode leaves the clock to
	// /v1/admin/advance.
	tickStop := make(chan struct{})
	tickDone := make(chan struct{})
	go func() {
		defer close(tickDone)
		if virtual || tick <= 0 {
			return
		}
		t := time.NewTicker(tick)
		defer t.Stop()
		for {
			select {
			case <-tickStop:
				return
			case <-t.C:
				if err := eng.RunScheduler(); err != nil {
					log.Printf("scheduler: %v", err)
				}
			}
		}
	}()

	hs := &http.Server{Handler: srv.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()
	mode := "wall-clock"
	if virtual {
		mode = "virtual-clock"
	}
	log.Printf("listening on %s (%s, %d auth tokens, data=%q)", ln.Addr(), mode, len(tokens), dataDir)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	select {
	case err := <-serveErr:
		return err
	case s := <-sig:
		log.Printf("%v: draining", s)
	}

	// Graceful drain, in dependency order: stop issuing scheduler passes
	// (they hold the engine's statement lock), reject new protocol work,
	// let in-flight requests finish, tear down sessions and cursors,
	// quiesce the refresher, and only then close the engine — which
	// writes the final checkpoint.
	close(tickStop)
	<-tickDone
	srv.Drain()
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := hs.Shutdown(ctx); err != nil {
		log.Printf("http shutdown: %v", err)
	}
	srv.Shutdown()
	eng.Refresher().Quiesce()
	if err := eng.Close(); err != nil && !errors.Is(err, dyntables.ErrClosed) {
		return fmt.Errorf("final checkpoint: %w", err)
	}
	log.Printf("drained cleanly")
	return nil
}

package main

import (
	"context"
	"encoding/json"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"time"

	"dyntables/internal/server"
)

// remoteShell drives a dtserve daemon over the HTTP cursor protocol.
// Statements run under a Ctrl-C-cancelable context: aborting the HTTP
// request cancels the server-side statement context, so cancellation
// propagates over the wire.
type remoteShell struct {
	cli  *server.Client
	sess *server.RemoteSession
}

func newRemoteShell(addr, token string) (*remoteShell, error) {
	cli := server.NewClient(addr, token)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	st, err := cli.Status(ctx)
	if err != nil {
		return nil, fmt.Errorf("connect %s: %w", addr, err)
	}
	sess, err := cli.NewSession(ctx, "")
	if err != nil {
		return nil, fmt.Errorf("open session on %s: %w", addr, err)
	}
	fmt.Printf("connected to %s as %s (server now %s)\n",
		addr, sess.Role(), st.Now.Format(time.RFC3339))
	return &remoteShell{cli: cli, sess: sess}, nil
}

func (r *remoteShell) close() {
	if err := r.sess.Close(); err != nil {
		log.Println("close session:", err)
	}
}

// cancelCtx returns a context canceled by Ctrl-C, mirroring the local
// shell's statement cancellation.
func cancelCtx() (context.Context, context.CancelFunc) {
	return signal.NotifyContext(context.Background(), os.Interrupt)
}

func (r *remoteShell) execute(text string) {
	ctx, stop := cancelCtx()
	defer stop()
	start := time.Now()
	results, err := r.sess.ExecScript(ctx, text)
	var served, affected int
	defer func() { printTiming(start, served, affected) }()
	for _, res := range results {
		served += len(res.Rows)
		affected += res.RowsAffected
		printRemote(res)
	}
	if err != nil {
		if ctx.Err() != nil {
			fmt.Println("canceled")
			return
		}
		fmt.Println("error:", err)
	}
}

// printRemote renders one wire-protocol result the same way the local
// shell renders a *dyntables.Result.
func printRemote(res *server.ClientResult) {
	switch {
	case res.Kind == "EXPLAIN":
		for _, row := range res.Rows {
			fmt.Println(cell(row[0]))
		}
	case len(res.Columns) > 0:
		printRemoteTable(res)
	case res.RowsAffected > 0:
		fmt.Printf("%s: %d rows\n", res.Kind, res.RowsAffected)
	case res.Message != "":
		fmt.Println(res.Message)
	default:
		fmt.Println(res.Kind, "ok")
	}
}

func printRemoteTable(res *server.ClientResult) {
	header := strings.Join(res.Columns, " | ")
	fmt.Println(header)
	fmt.Println(strings.Repeat("-", len(header)))
	for _, row := range res.Rows {
		parts := make([]string, len(row))
		for i, v := range row {
			parts[i] = cell(v)
		}
		fmt.Println(strings.Join(parts, " | "))
	}
	fmt.Printf("(%d rows)\n", len(res.Rows))
}

// cell formats one decoded JSON value for table output.
func cell(v any) string {
	switch x := v.(type) {
	case nil:
		return "NULL"
	case json.Number:
		return x.String()
	case string:
		return x
	default:
		return fmt.Sprint(x)
	}
}

func (r *remoteShell) metaCommand(line string) {
	ctx, stop := cancelCtx()
	defer stop()
	fields := strings.Fields(line)
	runShow := func(stmt string) {
		res, err := r.sess.Exec(ctx, stmt)
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		printRemoteTable(res)
	}
	switch fields[0] {
	case `\dt`:
		runShow(`SHOW DYNAMIC TABLES`)
	case `\dw`:
		runShow(`SHOW WAREHOUSES`)
	case `\health`:
		runShow(`SHOW HEALTH`)
	case `\alerts`:
		runShow(`SHOW ALERTS`)
	case `\d`:
		if len(fields) < 2 {
			fmt.Println(`usage: \d <name>`)
			return
		}
		r.describeObject(ctx, fields[1])
	case `\timing`:
		setTiming(fields)
	default:
		fmt.Println("unknown meta-command", fields[0], `(try \dt, \dw, \health, \alerts, \d <name>, \timing)`)
	}
}

func (r *remoteShell) describeObject(ctx context.Context, name string) {
	res, err := r.sess.Exec(ctx, fmt.Sprintf(`SELECT * FROM %s LIMIT 0`, name))
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("%s: %s\n", name, strings.Join(res.Columns, ", "))
	dtInfo, err := r.sess.Exec(ctx,
		`SELECT state, refresh_mode, declared_mode, mode_reason, target_lag, rows, data_ts, slo_attainment
		 FROM INFORMATION_SCHEMA.DYNAMIC_TABLES WHERE name = ?`, name)
	if err == nil && len(dtInfo.Rows) == 1 {
		row := dtInfo.Rows[0]
		fmt.Printf("dynamic table: state=%s mode=%s (declared %s) target_lag=%s rows=%s data_ts=%s slo=%s\n",
			cell(row[0]), cell(row[1]), cell(row[2]), cell(row[4]), cell(row[5]), cell(row[6]), cell(row[7]))
		if row[3] != nil {
			fmt.Printf("mode reason: %s\n", cell(row[3]))
		}
	}
}

func (r *remoteShell) directive(line string) {
	ctx, stop := cancelCtx()
	defer stop()
	fields := strings.Fields(line)
	switch fields[0] {
	case ".advance":
		if len(fields) < 2 {
			fmt.Println("usage: .advance <duration>")
			return
		}
		d, err := time.ParseDuration(fields[1])
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		if err := r.cli.Advance(ctx, d); err != nil {
			fmt.Println("error:", err)
			return
		}
		st, err := r.cli.Status(ctx)
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		fmt.Printf("advanced to %s\n", st.Now.Format(time.RFC3339))
	case ".refresh":
		if len(fields) < 2 {
			fmt.Println("usage: .refresh <dynamic table>")
			return
		}
		if _, err := r.sess.Exec(ctx, fmt.Sprintf(`ALTER DYNAMIC TABLE %s REFRESH`, fields[1])); err != nil {
			fmt.Println("error:", err)
			return
		}
		fmt.Println("refreshed", fields[1])
	case ".status":
		if len(fields) < 2 {
			fmt.Println("usage: .status <dynamic table>")
			return
		}
		r.describeObject(ctx, fields[1])
	case ".dvs":
		fmt.Println("error: .dvs needs an embedded engine; not supported over -connect")
	case ".role":
		if len(fields) < 2 {
			fmt.Println("usage: .role <name>")
			return
		}
		if err := r.sess.SetRole(ctx, fields[1]); err != nil {
			fmt.Println("error:", err)
			return
		}
		fmt.Println("role set to", fields[1])
	case ".warehouses":
		res, err := r.sess.Exec(ctx, `SHOW WAREHOUSES`)
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		printRemoteTable(res)
	case ".checkpoint":
		if err := r.cli.Checkpoint(ctx); err != nil {
			fmt.Println("error:", err)
			return
		}
		fmt.Println("checkpoint written")
	default:
		fmt.Println("unknown directive", fields[0])
	}
}

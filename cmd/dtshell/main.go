// Command dtshell executes SQL scripts against an embedded dyntables
// engine. Besides SQL statements (terminated by semicolons), it supports
// directives for driving virtual time and inspecting dynamic tables:
//
//	.advance 5m        advance the virtual clock and run the scheduler
//	.refresh name      manually refresh a dynamic table
//	.status name       print a dynamic table's state and history
//	.dvs name          check delayed view semantics for a dynamic table
//	.role name         switch the session role
//	.warehouses        print warehouse billing
//	.checkpoint        force a snapshot checkpoint (durable engines)
//
// psql-style meta-commands back the new SHOW statements:
//
//	\dt                list dynamic tables (SHOW DYNAMIC TABLES)
//	\dw                list warehouses (SHOW WAREHOUSES)
//	\health            per-DT health classification and blame (SHOW HEALTH)
//	\alerts            list watchdog alerts and firing state (SHOW ALERTS)
//	\d name            describe an object: columns, plus refresh state for DTs
//	\timing [on|off]   toggle printing each statement's wall-clock time
//	                   along with rows served and rows affected
//
// EXPLAIN output (EXPLAIN SELECT ... / EXPLAIN CREATE DYNAMIC TABLE ...)
// is pretty-printed as an indented plan tree instead of a result table.
//
// Statements run on a session with a cancelable context: Ctrl-C aborts
// the running statement (the scan stops mid-stream) without killing the
// shell.
//
// With -data DIR the engine is durable: state is write-ahead-logged and
// checkpointed under DIR, survives exit, and is recovered on the next
// start.
//
// With -connect ADDR the shell drives a remote dtserve daemon through
// the HTTP cursor protocol instead of embedding an engine: the same SQL,
// directives and meta-commands work over the wire (-token supplies the
// bearer token for authenticated daemons), and Ctrl-C cancels the
// running remote statement — aborting the request propagates the
// cancellation into the server-side statement context.
//
// Usage: dtshell [-data dir | -connect addr [-token t]] [script.sql]
// (reads stdin when no file is given)
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"os/signal"
	"strings"
	"time"

	"dyntables"
)

// shell abstracts the embedded-engine and remote-daemon modes behind the
// same scan loop.
type shell interface {
	execute(text string)
	directive(line string)
	metaCommand(line string)
	close()
}

func main() {
	dataDir := flag.String("data", "", "data directory for a durable engine (empty = in-memory)")
	connect := flag.String("connect", "", "address of a dtserve daemon (host:port); drives it remotely instead of embedding an engine")
	token := flag.String("token", "", "bearer token for -connect against an authenticated daemon")
	flag.Parse()

	var in io.Reader = os.Stdin
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		in = f
	}

	var sh shell
	if *connect != "" {
		if *dataDir != "" {
			log.Fatal("-connect and -data are mutually exclusive")
		}
		var err error
		sh, err = newRemoteShell(*connect, *token)
		if err != nil {
			log.Fatal(err)
		}
	} else {
		sh = newLocalShell(*dataDir)
	}
	defer sh.close()

	scanner := bufio.NewScanner(in)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)

	var pending strings.Builder
	interactive := flag.NArg() == 0
	if interactive {
		fmt.Print("dyntables> ")
	}
	for scanner.Scan() {
		line := scanner.Text()
		trimmed := strings.TrimSpace(line)
		if trimmed == "" || strings.HasPrefix(trimmed, "--") {
			prompt(interactive, &pending)
			continue
		}
		if strings.HasPrefix(trimmed, ".") {
			sh.directive(trimmed)
			prompt(interactive, &pending)
			continue
		}
		if strings.HasPrefix(trimmed, `\`) {
			sh.metaCommand(trimmed)
			prompt(interactive, &pending)
			continue
		}
		pending.WriteString(line)
		pending.WriteByte('\n')
		if strings.HasSuffix(trimmed, ";") {
			sh.execute(pending.String())
			pending.Reset()
		}
		prompt(interactive, &pending)
	}
	if strings.TrimSpace(pending.String()) != "" {
		sh.execute(pending.String())
	}
	if err := scanner.Err(); err != nil {
		// Not log.Fatal: the deferred close must still flush the WAL.
		log.Println(err)
	}
}

// localShell embeds an engine in-process (the original dtshell mode).
type localShell struct {
	eng  *dyntables.Engine
	sess *dyntables.Session
}

func newLocalShell(dataDir string) *localShell {
	var eng *dyntables.Engine
	if dataDir != "" {
		var err error
		eng, err = dyntables.Open(dataDir)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("durable engine at %s (recovered to %s)\n", dataDir, eng.Now().Format(time.RFC3339))
	} else {
		eng = dyntables.New()
	}
	return &localShell{eng: eng, sess: eng.NewSession()}
}

func (l *localShell) execute(text string)     { execute(l.sess, text) }
func (l *localShell) directive(line string)   { directive(l.eng, l.sess, line) }
func (l *localShell) metaCommand(line string) { metaCommand(l.sess, line) }
func (l *localShell) close() {
	if err := l.eng.Close(); err != nil {
		log.Println("close:", err)
	}
}

func prompt(interactive bool, pending *strings.Builder) {
	if !interactive {
		return
	}
	if strings.TrimSpace(pending.String()) == "" {
		fmt.Print("dyntables> ")
	} else {
		fmt.Print("       ... ")
	}
}

// timing is the \timing toggle, shared by both shell modes: when on,
// each executed script prints its host wall-clock time after the
// results (for remote mode that includes the network round-trips).
var timing bool

// setTiming handles the \timing meta-command for both shells.
func setTiming(fields []string) {
	switch {
	case len(fields) < 2:
		timing = !timing
	case strings.EqualFold(fields[1], "on"):
		timing = true
	case strings.EqualFold(fields[1], "off"):
		timing = false
	default:
		fmt.Println(`usage: \timing [on|off]`)
		return
	}
	if timing {
		fmt.Println("Timing is on.")
	} else {
		fmt.Println("Timing is off.")
	}
}

// printTiming reports a statement's wall time plus the rows it served
// and affected when \timing is on.
func printTiming(start time.Time, served, affected int) {
	if timing {
		fmt.Printf("Time: %s (%d rows served, %d affected)\n",
			time.Since(start).Round(time.Microsecond), served, affected)
	}
}

// execute runs a script under a context canceled by Ctrl-C, so a
// long-running statement aborts instead of killing the shell.
func execute(sess *dyntables.Session, text string) {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	start := time.Now()
	results, err := sess.ExecScriptContext(ctx, text)
	var served, affected int
	defer func() { printTiming(start, served, affected) }()
	for _, res := range results {
		served += len(res.Rows)
		affected += res.RowsAffected
		switch {
		case res.Kind == "EXPLAIN":
			// EXPLAIN rows are plan-tree lines; print them raw so the
			// indentation survives.
			for _, row := range res.Rows {
				fmt.Println(row[0].String())
			}
		case len(res.Columns) > 0:
			printTable(res)
		case res.RowsAffected > 0:
			fmt.Printf("%s: %d rows\n", res.Kind, res.RowsAffected)
		case res.Message != "":
			fmt.Println(res.Message)
		default:
			fmt.Println(res.Kind, "ok")
		}
	}
	if err != nil {
		if ctx.Err() != nil {
			fmt.Println("canceled")
			return
		}
		fmt.Println("error:", err)
	}
}

func printTable(res *dyntables.Result) {
	fmt.Println(strings.Join(res.Columns, " | "))
	fmt.Println(strings.Repeat("-", len(strings.Join(res.Columns, " | "))))
	for _, row := range res.Rows {
		parts := make([]string, len(row))
		for i, v := range row {
			parts[i] = v.String()
		}
		fmt.Println(strings.Join(parts, " | "))
	}
	fmt.Printf("(%d rows)\n", len(res.Rows))
}

// metaCommand handles psql-style \-commands backed by the SHOW
// statements and the INFORMATION_SCHEMA virtual tables. Like ordinary
// statements, they run under a Ctrl-C-cancelable context.
func metaCommand(sess *dyntables.Session, line string) {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	fields := strings.Fields(line)
	runShow := func(stmt string) {
		res, err := sess.ExecContext(ctx, stmt)
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		printTable(res)
	}
	switch fields[0] {
	case `\dt`:
		runShow(`SHOW DYNAMIC TABLES`)
	case `\dw`:
		runShow(`SHOW WAREHOUSES`)
	case `\health`:
		runShow(`SHOW HEALTH`)
	case `\alerts`:
		runShow(`SHOW ALERTS`)
	case `\d`:
		if len(fields) < 2 {
			fmt.Println(`usage: \d <name>`)
			return
		}
		describeObject(ctx, sess, fields[1])
	case `\timing`:
		setTiming(fields)
	default:
		fmt.Println("unknown meta-command", fields[0], `(try \dt, \dw, \health, \alerts, \d <name>, \timing)`)
	}
}

// describeObject prints an object's columns and, for dynamic tables, its
// refresh state from INFORMATION_SCHEMA.DYNAMIC_TABLES.
func describeObject(ctx context.Context, sess *dyntables.Session, name string) {
	res, err := sess.ExecContext(ctx, fmt.Sprintf(`SELECT * FROM %s LIMIT 0`, name))
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("%s: %s\n", name, strings.Join(res.Columns, ", "))
	dtInfo, err := sess.ExecContext(ctx,
		`SELECT state, refresh_mode, declared_mode, mode_reason, target_lag, rows, data_ts, slo_attainment
		 FROM INFORMATION_SCHEMA.DYNAMIC_TABLES WHERE name = ?`, name)
	if err == nil && len(dtInfo.Rows) == 1 {
		row := dtInfo.Rows[0]
		fmt.Printf("dynamic table: state=%s mode=%s (declared %s) target_lag=%s rows=%s data_ts=%s slo=%s\n",
			row[0], row[1], row[2], row[4], row[5], row[6], row[7])
		if !row[3].IsNull() {
			fmt.Printf("mode reason: %s\n", row[3])
		}
	}
}

func directive(eng *dyntables.Engine, sess *dyntables.Session, line string) {
	fields := strings.Fields(line)
	switch fields[0] {
	case ".advance":
		if len(fields) < 2 {
			fmt.Println("usage: .advance <duration>")
			return
		}
		d, err := time.ParseDuration(fields[1])
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		eng.AdvanceTime(d)
		if err := eng.RunScheduler(); err != nil {
			fmt.Println("scheduler error:", err)
			return
		}
		fmt.Printf("advanced to %s\n", eng.Now().Format(time.RFC3339))
	case ".refresh":
		if len(fields) < 2 {
			fmt.Println("usage: .refresh <dynamic table>")
			return
		}
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
		err := sess.ManualRefreshContext(ctx, fields[1])
		stop()
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		fmt.Println("refreshed", fields[1])
	case ".status":
		if len(fields) < 2 {
			fmt.Println("usage: .status <dynamic table>")
			return
		}
		st, err := sess.Describe(fields[1])
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		fmt.Printf("%s: state=%s mode=%s rows=%d lag=%s data_ts=%s errors=%d\n",
			st.Name, st.State, st.EffectiveMode, st.Rows,
			st.Lag.Truncate(time.Second), st.DataTimestamp.Format(time.RFC3339), st.ErrorCount)
		for _, rec := range st.History {
			status := "ok"
			if rec.Err != nil {
				status = rec.Err.Error()
			}
			fmt.Printf("  %-13s data_ts=%s +%d -%d  %s\n",
				rec.Action, rec.DataTS.Format("15:04:05"), rec.Inserted, rec.Deleted, status)
		}
	case ".dvs":
		if len(fields) < 2 {
			fmt.Println("usage: .dvs <dynamic table>")
			return
		}
		if err := eng.CheckDVS(fields[1]); err != nil {
			fmt.Println("DVS VIOLATION:", err)
			return
		}
		fmt.Println("DVS holds for", fields[1])
	case ".role":
		if len(fields) < 2 {
			fmt.Println("usage: .role <name>")
			return
		}
		sess.SetRole(fields[1])
		fmt.Println("role set to", fields[1])
	case ".warehouses":
		for _, wh := range eng.Warehouses().All() {
			fmt.Printf("%s: size=%s billed=%s credits=%.4f resumes=%d\n",
				wh.Name, wh.Size, wh.BilledTime().Truncate(time.Second), wh.Credits(), wh.Resumes())
		}
	case ".checkpoint":
		if err := eng.Checkpoint(); err != nil {
			fmt.Println("error:", err)
			return
		}
		fmt.Println("checkpoint written")
	default:
		fmt.Println("unknown directive", fields[0])
	}
}
